"""Bench: the discrete-event kernel and drive substrate throughput.

Not a paper figure — these establish that the simulation substrate is fast
enough for the full-scale experiments (hundreds of thousands of events per
second) and guard against regressions.  The largest cases pit the batched
fast kernel (``engine="fast"``) against the event kernel — on a Figure 2/4
style read-only scenario (>= 3x enforced) and on a shared-cache mixed
read/write scenario through the global-merge path (>= 5x enforced) — and
the sweep case drives a grid through the orchestrator's caching.
"""

import math
import time

import numpy as np
import pytest

from repro.disk import DiskDrive, ST3500630AS
from repro.experiments.orchestrator import SimTask, SweepRunner
from repro.sim import Environment, Store
from repro.system import StorageConfig, StorageSystem, allocate
from repro.units import GiB, MB
from repro.workload.generator import SyntheticWorkloadParams, generate_workload
from repro.workload.mixed import MixedWorkloadParams, generate_mixed_workload


def test_event_loop_throughput(benchmark):
    """Ping-pong processes: ~100k event dispatches."""

    def run():
        env = Environment()

        def ticker(env, n):
            for _ in range(n):
                yield env.timeout(1.0)

        for _ in range(10):
            env.process(ticker(env, 5_000))
        env.run()
        return env.now

    assert benchmark(run) == 5_000.0


def test_store_handoff_throughput(benchmark):
    """Producer/consumer through a Store: 20k handoffs."""

    def run():
        env = Environment()
        store = Store(env)
        done = []

        def producer(env):
            for i in range(20_000):
                yield store.put(i)

        def consumer(env):
            for _ in range(20_000):
                item = yield store.get()
            done.append(item)

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        return done[0]

    assert benchmark(run) == 19_999


def test_drive_request_throughput(benchmark):
    """One drive serving 5k requests with idle gaps and spin cycles."""
    rng = np.random.default_rng(2)
    gaps = rng.exponential(10.0, size=5_000)

    def run():
        env = Environment()
        drive = DiskDrive(env, ST3500630AS, idleness_threshold=20.0)

        def feeder(env):
            for gap in gaps:
                yield env.timeout(gap)
                drive.submit(0, 36 * MB)

        env.process(feeder(env))
        env.run()
        return drive.stats.completions

    assert benchmark(run) == 5_000


def test_fast_engine_speedup(scale, capsys):
    """Largest case: both kernels on a Fig 2/4-style run; fast must win 3x."""
    params = SyntheticWorkloadParams(
        n_files=8_000,
        arrival_rate=8.0,
        duration=max(600.0, 4_000.0 * scale),
        seed=7,
    )
    workload = generate_workload(params)
    cfg = StorageConfig(num_disks=100, load_constraint=0.7)
    mapping = allocate(workload.catalog, "pack", cfg, 8.0).mapping(
        workload.catalog.n
    )

    def run_engine(engine):
        system = StorageSystem(
            workload.catalog, mapping, cfg.with_overrides(engine=engine)
        )
        return system.run(workload.stream)

    def timed(engine, rounds):
        best = math.inf
        result = None
        for _ in range(rounds):
            t0 = time.perf_counter()
            result = run_engine(engine)
            best = min(best, time.perf_counter() - t0)
        return result, best

    # Best-of-N so a scheduling hiccup on a shared CI runner cannot flip
    # the speedup assertion (the fast run is only milliseconds long).
    event, event_s = timed("event", rounds=2)
    fast, fast_s = timed("fast", rounds=5)
    fast_s = max(fast_s, 1e-9)

    assert fast.energy == pytest.approx(event.energy, rel=1e-6)
    assert fast.mean_response == pytest.approx(event.mean_response, rel=1e-6)
    assert fast.spinups == event.spinups
    assert fast.completions == event.completions
    with capsys.disabled():
        print(
            f"\n[kernel] {len(workload.stream)} requests: "
            f"event {event_s:.3f}s, fast {fast_s:.4f}s "
            f"({event_s / fast_s:.1f}x speedup)"
        )
    assert event_s >= 3.0 * fast_s


def test_fast_engine_speedup_cached_mixed(scale, capsys):
    """The global-merge path: cache + writes; fast must win 5x."""
    base = generate_workload(
        SyntheticWorkloadParams(
            n_files=4_000,
            arrival_rate=6.0,
            duration=max(600.0, 4_000.0 * scale),
            seed=7,
        )
    )
    catalog, stream = generate_mixed_workload(
        base.catalog,
        MixedWorkloadParams(
            write_fraction=0.2,
            new_file_fraction=0.3,
            arrival_rate=8.0,
            duration=max(600.0, 4_000.0 * scale),
            seed=11,
        ),
    )
    cfg = StorageConfig(
        num_disks=100,
        load_constraint=0.7,
        cache_policy="lru",
        cache_capacity=16 * GiB,
    )
    alloc = allocate(base.catalog, "pack", cfg, 8.0)
    mapping = np.concatenate(
        [
            alloc.mapping(base.catalog.n),
            np.full(catalog.n - base.catalog.n, -1, dtype=np.int64),
        ]
    )

    def run_engine(engine):
        system = StorageSystem(catalog, mapping, cfg.with_overrides(engine=engine))
        return system.run(stream)

    def timed(engine, rounds):
        best = math.inf
        result = None
        for _ in range(rounds):
            t0 = time.perf_counter()
            result = run_engine(engine)
            best = min(best, time.perf_counter() - t0)
        return result, best

    event, event_s = timed("event", rounds=2)
    fast, fast_s = timed("fast", rounds=5)
    fast_s = max(fast_s, 1e-9)

    assert fast.energy == pytest.approx(event.energy, rel=1e-6)
    assert fast.mean_response == pytest.approx(event.mean_response, rel=1e-6)
    assert fast.spinups == event.spinups
    assert fast.completions == event.completions
    assert fast.cache_stats.hits == event.cache_stats.hits
    assert fast.cache_stats.hit_ratio == pytest.approx(
        event.cache_stats.hit_ratio, rel=1e-9
    )
    with capsys.disabled():
        print(
            f"\n[kernel/cached-mixed] {len(stream)} requests "
            f"(hit ratio {event.cache_stats.hit_ratio:.3f}): "
            f"event {event_s:.3f}s, fast {fast_s:.4f}s "
            f"({event_s / fast_s:.1f}x speedup)"
        )
    assert event_s >= 5.0 * fast_s


def test_orchestrated_sweep_throughput(scale, capsys):
    """A rate x load grid through the SweepRunner: cold pass vs cached."""
    cfg = StorageConfig(num_disks=100)
    tasks = [
        SimTask(
            label=f"pack R={rate:g} L={load:g}",
            workload=SyntheticWorkloadParams(
                n_files=2_000,
                arrival_rate=rate,
                duration=max(300.0, 2_000.0 * scale),
                seed=11,
            ),
            config=cfg.with_overrides(load_constraint=load),
            policy="pack",
            arrival_rate=rate,
            num_disks=100,
            key=(rate, load),
        )
        for rate in (2.0, 6.0)
        for load in (0.5, 0.7, 0.9)
    ]
    runner = SweepRunner(max_workers=1, engine="fast")
    t0 = time.perf_counter()
    cold = runner.run_map(tasks)
    t1 = time.perf_counter()
    runner.run_map(tasks)
    t2 = time.perf_counter()

    assert runner.stats.executed == len(tasks)
    assert runner.stats.cached == len(tasks)
    assert all(r.completions > 0 for r in cold.values())
    with capsys.disabled():
        print(
            f"\n[sweep] {len(tasks)} points: cold {t1 - t0:.2f}s, "
            f"cached {t2 - t1:.4f}s"
        )
    assert t2 - t1 < t1 - t0
