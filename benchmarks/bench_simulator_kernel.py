"""Bench: the discrete-event kernel and drive substrate throughput.

Not a paper figure — these establish that the simulation substrate is fast
enough for the full-scale experiments (hundreds of thousands of events per
second) and guard against regressions.
"""

import math

import numpy as np

from repro.disk import DiskDrive, ST3500630AS
from repro.sim import Environment, Store
from repro.units import MB


def test_event_loop_throughput(benchmark):
    """Ping-pong processes: ~100k event dispatches."""

    def run():
        env = Environment()

        def ticker(env, n):
            for _ in range(n):
                yield env.timeout(1.0)

        for _ in range(10):
            env.process(ticker(env, 5_000))
        env.run()
        return env.now

    assert benchmark(run) == 5_000.0


def test_store_handoff_throughput(benchmark):
    """Producer/consumer through a Store: 20k handoffs."""

    def run():
        env = Environment()
        store = Store(env)
        done = []

        def producer(env):
            for i in range(20_000):
                yield store.put(i)

        def consumer(env):
            for _ in range(20_000):
                item = yield store.get()
            done.append(item)

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        return done[0]

    assert benchmark(run) == 19_999


def test_drive_request_throughput(benchmark):
    """One drive serving 5k requests with idle gaps and spin cycles."""
    rng = np.random.default_rng(2)
    gaps = rng.exponential(10.0, size=5_000)

    def run():
        env = Environment()
        drive = DiskDrive(env, ST3500630AS, idleness_threshold=20.0)

        def feeder(env):
            for gap in gaps:
                yield env.timeout(gap)
                drive.submit(0, 36 * MB)

        env.process(feeder(env))
        env.run()
        return drive.stats.completions

    assert benchmark(run) == 5_000
