"""Bench: the SLO-frontier grid and the controlled fast kernel's speedup.

Guards two properties of the online DPM control subsystem:

* **controlled-kernel speedup** — under interval-segmented control (a
  dynamic DPM policy, per-interval threshold vectors, telemetry feeds at
  every boundary) the fast kernel must still beat the event engine by
  >= 5x while agreeing on the physics;
* **grid plumbing** — the ``slo_frontier`` experiment's grid dispatches
  through the shared orchestrator with DPM-salted fingerprints (every
  (policy, rate, threshold/target) point distinct, nothing deduplicated
  away) and replays from the disk cache.
"""

import math
import time

import pytest

from repro.experiments.orchestrator import SweepRunner
from repro.experiments.slo_frontier import build_tasks
from repro.system import StorageConfig, StorageSystem, allocate
from repro.units import MB
from repro.workload.generator import SyntheticWorkloadParams, generate_workload


def test_fast_engine_speedup_under_control(scale, capsys):
    """Interval-segmented control: fast must win 5x over the event engine."""
    duration = max(800.0, 4_000.0 * scale)
    workload = generate_workload(
        SyntheticWorkloadParams(
            n_files=6_000,
            arrival_rate=6.0,
            duration=duration,
            seed=7,
            s_max=500 * MB,
            s_min=20 * MB,
        )
    )
    cfg = StorageConfig(
        num_disks=100,
        load_constraint=0.6,
        dpm_policy="slo_feedback",
        slo_target=18.0,
        control_interval=max(50.0, duration / 10.0),
    )
    mapping = allocate(
        workload.catalog, "round_robin", cfg, 6.0, num_disks=100
    ).mapping(workload.catalog.n)

    def run_engine(engine):
        system = StorageSystem(
            workload.catalog, mapping, cfg.with_overrides(engine=engine)
        )
        return system.run(workload.stream)

    def timed(engine, rounds):
        best = math.inf
        result = None
        for _ in range(rounds):
            t0 = time.perf_counter()
            result = run_engine(engine)
            best = min(best, time.perf_counter() - t0)
        return result, best

    # Best-of-N so a scheduling hiccup on a shared CI runner cannot flip
    # the speedup assertion (the fast run is only milliseconds long).
    event, event_s = timed("event", rounds=2)
    fast, fast_s = timed("fast", rounds=5)
    fast_s = max(fast_s, 1e-9)

    assert fast.energy == pytest.approx(event.energy, rel=1e-6)
    assert fast.mean_response == pytest.approx(event.mean_response, rel=1e-6)
    assert fast.spinups == event.spinups
    assert fast.completions == event.completions
    # The controller walked the same trajectory on both engines.
    assert (
        fast.extra["dpm"]["thresholds"] == event.extra["dpm"]["thresholds"]
    )
    with capsys.disabled():
        print(
            f"\n[slo-control] {len(workload.stream)} requests, "
            f"{len(fast.extra['dpm']['t_end'])} control intervals: "
            f"event {event_s:.3f}s, fast {fast_s:.4f}s "
            f"({event_s / fast_s:.1f}x speedup)"
        )
    assert event_s >= 5.0 * fast_s


def test_frontier_grid_through_sweep_runner_disk_cache(scale, tmp_path, capsys):
    tasks = build_tasks(
        scale=max(0.05, scale / 2),
        seed=20090607,
        rates=(1.0,),
        static_thresholds=(15.0, 60.0, 240.0),
        slo_targets=(12.0, 18.0),
        dynamic_policies=("adaptive_timeout", "exponential_predictive"),
        num_disks=100,
        load_constraint=0.6,
    )
    cache_dir = tmp_path / "sweeps"

    cold = SweepRunner(max_workers=1, engine="fast", cache_dir=cache_dir)
    t0 = time.perf_counter()
    by_key = cold.run_map(tasks)
    cold_s = time.perf_counter() - t0
    # DPM-salted fingerprints: every grid point is its own simulation.
    assert cold.stats.executed == len(tasks) == 7
    assert cold.stats.deduplicated == 0
    assert all(r.completions > 0 for r in by_key.values())

    warm = SweepRunner(max_workers=1, engine="fast", cache_dir=cache_dir)
    t0 = time.perf_counter()
    warm_map = warm.run_map(tasks)
    warm_s = max(time.perf_counter() - t0, 1e-9)
    assert warm.stats.executed == 0
    assert warm.stats.cached == len(tasks)
    for key, res in warm_map.items():
        assert res.energy == by_key[key].energy
    with capsys.disabled():
        print(
            f"\n[slo-frontier] {len(tasks)} grid points: cold {cold_s:.2f}s, "
            f"warm {warm_s:.3f}s"
        )
