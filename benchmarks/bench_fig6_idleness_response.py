"""Bench: regenerate Figure 6 (response time vs idleness threshold, NERSC).

Paper shape targets: random placement needs a large threshold before its
response settles (every spun-down hit pays 15 s); Pack_Disk4 responds
similar-or-better than Pack_Disk under the batched same-size arrivals it
was designed for.
"""

from repro.experiments import fig6_idleness_response


def test_fig6_regeneration(benchmark, report, scale):
    result = benchmark.pedantic(
        fig6_idleness_response.run, kwargs=dict(scale=scale), rounds=1, iterations=1
    )
    report(result)

    bundle = result.bundles["response"]
    rnd = bundle.series["RND"]
    pack = bundle.series["Pack_Disk"]
    pack4 = bundle.series["Pack_Disk4"]

    # RND's response improves as the threshold grows (fewer spin-up hits).
    assert rnd.y[-1] < rnd.y[0]
    # The grouped variant fixes Pack_Disk's batching penalty: at the large
    # threshold Pack_Disk4 responds no worse than Pack_Disk.
    assert pack4.y[-1] <= pack.y[-1] * 1.1
