"""Bench: regenerate Figure 3 (response-time ratio vs arrival rate).

Paper shape targets: ratio roughly within 0.5-2.5 (up to ~3.5 at L=80%);
Pack_Disks can be *faster* than random at low rates (random pays spin-ups)
and slower at high rates (packed disks queue).
"""

from repro.experiments import fig3_response_ratio


def test_fig3_regeneration(benchmark, report, scale):
    result = benchmark.pedantic(
        fig3_response_ratio.run, kwargs=dict(scale=scale), rounds=1, iterations=1
    )
    report(result)

    bundle = result.bundles["response_ratio"]
    ys = [y for s in bundle.series.values() for y in s.y]
    # The paper's observed band, with slack for the reimplemented substrate.
    assert min(ys) > 0.2
    assert max(ys) < 8.0
    # Tighter L (more disks, less queueing) gives lower ratios at high R.
    high_r = {
        label: series.y[series.x.index(12.0)]
        for label, series in bundle.series.items()
    }
    assert high_r["L=50%"] <= high_r["L=80%"] * 1.25
