"""Bench: regenerate Figure 2 (power-saving ratio vs arrival rate).

Paper shape targets: >60% saving for R < 4 at every L; saving decreases
with R and increases with L.  The rate sweep is memoized, so Figure 3's
bench (same grid) reuses these simulations.
"""

from repro.experiments import fig2_power_saving


def test_fig2_regeneration(benchmark, report, scale):
    result = benchmark.pedantic(
        fig2_power_saving.run, kwargs=dict(scale=scale), rounds=1, iterations=1
    )
    report(result)

    bundle = result.bundles["power_saving"]
    # Shape assertions (scale-robust): strong saving at R=1 everywhere.
    # At short scaled durations the initial spin-down transient (~63 s of
    # every disk spinning) dilutes the ratio; full scale reaches the
    # paper's >60%.
    for label, series in bundle.series.items():
        saving_at_1 = series.y[series.x.index(1.0)]
        assert saving_at_1 > 0.4, f"{label}: saving at R=1 was {saving_at_1:.2f}"
    # ...and saving declines from R=1 to R=12 for every L.
    for label, series in bundle.series.items():
        assert series.y[series.x.index(12.0)] < series.y[series.x.index(1.0)]
