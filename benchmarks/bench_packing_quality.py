"""Bench: packing quality — Theorem 1's guarantee and baseline comparison.

Regenerates the allocator-vs-lower-bound table and asserts the guarantee.
"""

import numpy as np

from repro.core import (
    continuous_lower_bound,
    first_fit_decreasing,
    make_items,
    pack_disks,
    theorem1_guarantee,
)
from repro.experiments import ablations


def test_quality_ablation(benchmark, report, scale):
    result = benchmark.pedantic(
        ablations.run_quality, kwargs=dict(scale=scale), rounds=1, iterations=1
    )
    report(result)
    assert any("satisfied" in n for n in result.notes)


def test_pack_vs_ffd_quality(benchmark):
    """Pack_Disks must stay within a small factor of FFD (and the bound)."""
    rng = np.random.default_rng(11)
    items = make_items(
        rng.uniform(0.001, 0.35, 8_000), rng.uniform(0.001, 0.35, 8_000)
    )

    allocation = benchmark(pack_disks, items)

    lb = continuous_lower_bound(items)
    assert allocation.num_disks <= theorem1_guarantee(items)
    ffd = first_fit_decreasing(items)
    assert allocation.num_disks <= 1.8 * ffd.num_disks
    assert allocation.num_disks >= lb
