"""Bench: request scheduling overhead and the fast kernel's speedup.

Guards two properties of the slack-aware scheduling subsystem:

* **scheduled-kernel speedup** — with a deferring request scheduler in
  front of the drives (the scheduling pre-pass re-times every arrival
  before the Lindley banks see it) the fast kernel must still beat the
  event engine by >= 5x while agreeing on the physics request-by-request;
* **composition** — the scheduler composes with the ``slo_feedback``
  controller (the scheduler reads the controller's live percentile
  telemetry for its stress gate) without breaking cross-engine agreement
  on the control trajectory.
"""

import math
import time

import pytest

from repro.system import StorageConfig, StorageSystem, allocate
from repro.units import MB
from repro.workload.generator import SyntheticWorkloadParams, generate_workload


def _timed(run, rounds):
    best = math.inf
    result = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        result = run()
        best = min(best, time.perf_counter() - t0)
    return result, best


def test_fast_engine_speedup_under_scheduling(scale, capsys):
    """Deferring scheduler: fast must win 5x over the event engine."""
    duration = max(800.0, 4_000.0 * scale)
    workload = generate_workload(
        SyntheticWorkloadParams(
            n_files=6_000,
            arrival_rate=6.0,
            duration=duration,
            seed=11,
            s_max=500 * MB,
            s_min=20 * MB,
        )
    )
    cfg = StorageConfig(
        num_disks=100,
        load_constraint=0.6,
        idleness_threshold=60.0,
        scheduler="slack_defer",
        scheduler_params=(("target", 90.0), ("max_hold", 75.0)),
    )
    mapping = allocate(
        workload.catalog, "round_robin", cfg, 6.0, num_disks=100
    ).mapping(workload.catalog.n)

    def run_engine(engine):
        system = StorageSystem(
            workload.catalog, mapping, cfg.with_overrides(engine=engine)
        )
        return system.run(workload.stream)

    # Best-of-N so a scheduling hiccup on a shared CI runner cannot flip
    # the speedup assertion (the fast run is only milliseconds long).
    event, event_s = _timed(lambda: run_engine("event"), rounds=2)
    fast, fast_s = _timed(lambda: run_engine("fast"), rounds=5)
    fast_s = max(fast_s, 1e-9)

    assert fast.energy == pytest.approx(event.energy, rel=1e-6)
    assert fast.mean_response == pytest.approx(event.mean_response, rel=1e-6)
    assert fast.spinups == event.spinups
    assert fast.completions == event.completions
    with capsys.disabled():
        print(
            f"\n[scheduling] {len(workload.stream)} requests, slack_defer: "
            f"event {event_s:.3f}s, fast {fast_s:.4f}s "
            f"({event_s / fast_s:.1f}x speedup)"
        )
    assert event_s >= 5.0 * fast_s


def test_scheduler_composes_with_controller(scale, capsys):
    """slack_defer + slo_feedback: both engines, same control trajectory."""
    duration = max(800.0, 4_000.0 * scale)
    workload = generate_workload(
        SyntheticWorkloadParams(
            n_files=4_000,
            arrival_rate=4.0,
            duration=duration,
            seed=13,
            s_max=500 * MB,
            s_min=20 * MB,
        )
    )
    cfg = StorageConfig(
        num_disks=100,
        load_constraint=0.6,
        dpm_policy="slo_feedback",
        slo_target=90.0,
        control_interval=max(50.0, duration / 10.0),
        scheduler="slack_defer",
        scheduler_params=(("max_hold", 75.0),),
    )
    mapping = allocate(
        workload.catalog, "round_robin", cfg, 4.0, num_disks=100
    ).mapping(workload.catalog.n)

    def run_engine(engine):
        system = StorageSystem(
            workload.catalog, mapping, cfg.with_overrides(engine=engine)
        )
        return system.run(workload.stream)

    event, event_s = _timed(lambda: run_engine("event"), rounds=1)
    fast, fast_s = _timed(lambda: run_engine("fast"), rounds=3)
    fast_s = max(fast_s, 1e-9)

    assert fast.energy == pytest.approx(event.energy, rel=1e-6)
    assert fast.spinups == event.spinups
    # The controller walked the same trajectory on both engines even with
    # the scheduler re-timing arrivals underneath it.
    assert (
        fast.extra["dpm"]["thresholds"] == event.extra["dpm"]["thresholds"]
    )
    with capsys.disabled():
        print(
            f"\n[scheduling+control] {len(workload.stream)} requests: "
            f"event {event_s:.3f}s, fast {fast_s:.4f}s "
            f"({event_s / fast_s:.1f}x speedup)"
        )
