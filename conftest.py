"""Repo-wide pytest configuration (applies to tests/ and benchmarks/).

Points the orchestrator's disk-backed sweep cache at a session tmp dir.
The shared runner persists results under ``~/.cache/repro/sweeps`` by
default; during tests and benchmarks that would both pollute the user's
cache and — worse — serve results fingerprinted before a code change,
masking regressions (and zeroing out cold-vs-cached benchmark timings).
Tests that need a specific location still override ``cache_dir``
explicitly.
"""

from __future__ import annotations

import os

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--runslow",
        action="store_true",
        default=False,
        help=(
            "run tests marked @pytest.mark.slow (e.g. the differential "
            "harness's exhaustive ladder x DPM-policy equivalence grid)"
        ),
    )


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "slow: nightly-style sweeps, skipped unless --runslow is given",
    )


def pytest_collection_modifyitems(config, items):
    if config.getoption("--runslow"):
        return
    skip = pytest.mark.skip(reason="needs --runslow")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip)


@pytest.fixture(autouse=True, scope="session")
def _isolated_sweep_cache(tmp_path_factory):
    previous = os.environ.get("REPRO_SWEEP_CACHE")
    os.environ["REPRO_SWEEP_CACHE"] = str(
        tmp_path_factory.mktemp("sweep-cache")
    )
    yield
    if previous is None:
        os.environ.pop("REPRO_SWEEP_CACHE", None)
    else:
        os.environ["REPRO_SWEEP_CACHE"] = previous
