"""Shim so `pip install -e .` works without the `wheel` package installed.

All metadata lives in pyproject.toml; with no [build-system] table pip uses
the legacy setuptools path, which supports editable installs on
environments (like this offline one) that lack `wheel`.
"""

from setuptools import setup

setup()
