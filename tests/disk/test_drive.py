"""Behavioural tests for the simulated drive: the heart of the power model."""

import math

import pytest

from repro.disk import DiskDrive, DiskState, ST3500630AS
from repro.errors import SimulationError
from repro.sim import Environment
from repro.units import MB

SPEC = ST3500630AS
OVERHEAD = SPEC.access_overhead  # 12.66 ms


def make_drive(env, **kwargs):
    kwargs.setdefault("idleness_threshold", math.inf)
    return DiskDrive(env, SPEC, **kwargs)


class TestService:
    def test_response_equals_service_when_idle(self, env):
        drive = make_drive(env)
        req = drive.submit(0, 72 * MB)
        env.run(until=req.done)
        assert req.done.value == pytest.approx(1.0 + OVERHEAD)

    def test_fifo_service_order(self, env):
        drive = make_drive(env)
        first = drive.submit(0, 72 * MB)
        second = drive.submit(1, 72 * MB)
        env.run(until=second.done)
        assert first.done.value == pytest.approx(1.0 + OVERHEAD)
        assert second.done.value == pytest.approx(2.0 + 2 * OVERHEAD)

    def test_queueing_delay_included(self, env):
        drive = make_drive(env)
        drive.submit(0, 720 * MB)  # 10 s service

        def late(env):
            yield env.timeout(5.0)
            req = drive.submit(1, 72 * MB)
            value = yield req.done
            return value

        p = env.process(late(env))
        response = env.run(until=p)
        # Arrives at 5, starts at ~10.01, finishes at ~11.02.
        assert response == pytest.approx(10 * (1 + 0.001266) - 5 + 1 + OVERHEAD, rel=1e-3)

    def test_zero_size_request(self, env):
        drive = make_drive(env)
        req = drive.submit(0, 0.0)
        env.run(until=req.done)
        assert req.done.value == pytest.approx(OVERHEAD)

    def test_negative_size_rejected(self, env):
        drive = make_drive(env)
        with pytest.raises(SimulationError):
            drive.submit(0, -1.0)

    def test_write_requests_counted(self, env):
        drive = make_drive(env)
        req = drive.submit(0, 72 * MB, kind="write")
        env.run(until=req.done)
        assert drive.stats.writes == 1
        assert drive.stats.reads == 0


class TestSpinDown:
    def test_spins_down_after_threshold(self):
        env = Environment()
        drive = DiskDrive(env, SPEC, idleness_threshold=100.0)
        req = drive.submit(0, 72 * MB)
        env.run(until=req.done)
        env.run(until=env.now + 99.0)
        assert drive.state is DiskState.IDLE
        env.run(until=env.now + 2.0 + SPEC.spindown_time)
        assert drive.state is DiskState.STANDBY
        assert drive.stats.spindowns == 1

    def test_never_spins_down_with_infinite_threshold(self, env):
        drive = make_drive(env)
        req = drive.submit(0, 72 * MB)
        env.run(until=req.done)
        env.run(until=env.now + 100_000.0)
        assert drive.state is DiskState.IDLE
        assert drive.stats.spindowns == 0

    def test_zero_threshold_spins_down_immediately(self):
        env = Environment()
        drive = DiskDrive(env, SPEC, idleness_threshold=0.0)
        req = drive.submit(0, 72 * MB)
        env.run(until=req.done)
        env.run(until=env.now + SPEC.spindown_time + 0.1)
        assert drive.state is DiskState.STANDBY

    def test_spin_up_penalty_on_standby_hit(self):
        env = Environment()
        drive = DiskDrive(env, SPEC, idleness_threshold=50.0)
        env.run(until=200.0)  # idle 50 s, down 10 s, standby
        assert drive.state is DiskState.STANDBY
        req = drive.submit(0, 72 * MB)
        env.run(until=req.done)
        assert req.done.value == pytest.approx(
            SPEC.spinup_time + 1.0 + OVERHEAD
        )
        assert drive.stats.spinups == 1

    def test_arrival_during_spindown_waits_full_transition(self):
        env = Environment()
        drive = DiskDrive(env, SPEC, idleness_threshold=50.0)

        def poke(env):
            yield env.timeout(55.0)  # mid-spin-down (50..60)
            req = drive.submit(0, 72 * MB)
            value = yield req.done
            return value

        p = env.process(poke(env))
        response = env.run(until=p)
        # Waits the remaining 5 s of spin-down + full 15 s spin-up.
        assert response == pytest.approx(5.0 + SPEC.spinup_time + 1.0 + OVERHEAD)

    def test_request_resets_idle_timer(self):
        env = Environment()
        drive = DiskDrive(env, SPEC, idleness_threshold=100.0)

        def pinger(env):
            for _ in range(5):
                yield env.timeout(90.0)
                drive.submit(0, 1 * MB)

        env.process(pinger(env))
        env.run(until=460.0)
        assert drive.stats.spindowns == 0

    def test_initial_standby_state(self):
        env = Environment()
        drive = DiskDrive(
            env, SPEC, idleness_threshold=1e9,
            initial_state=DiskState.STANDBY,
        )
        env.run(until=100.0)
        assert drive.state is DiskState.STANDBY
        req = drive.submit(0, 72 * MB)
        env.run(until=req.done)
        assert req.done.value == pytest.approx(
            SPEC.spinup_time + 1.0 + OVERHEAD
        )

    def test_invalid_initial_state(self, env):
        with pytest.raises(SimulationError):
            DiskDrive(env, SPEC, initial_state=DiskState.SPINUP)

    def test_negative_threshold_rejected(self, env):
        with pytest.raises(SimulationError):
            DiskDrive(env, SPEC, idleness_threshold=-1.0)

    def test_default_threshold_is_breakeven(self, env):
        drive = DiskDrive(env, SPEC)
        assert drive.threshold == pytest.approx(SPEC.breakeven_threshold())


class TestEnergyAccounting:
    def test_durations_cover_elapsed_time(self):
        env = Environment()
        drive = DiskDrive(env, SPEC, idleness_threshold=30.0)
        for t in (0.0, 100.0, 500.0):
            pass
        drive.submit(0, 72 * MB)

        def more(env):
            yield env.timeout(100.0)
            drive.submit(1, 144 * MB)
            yield env.timeout(400.0)
            drive.submit(2, 72 * MB)

        env.process(more(env))
        env.run(until=1_000.0)
        total = sum(drive.state_durations().values())
        assert total == pytest.approx(1_000.0)

    def test_energy_matches_manual_integration(self):
        env = Environment()
        drive = DiskDrive(env, SPEC, idleness_threshold=math.inf)
        req = drive.submit(0, 720 * MB)  # 10 s transfer
        env.run(until=100.0)
        expected = (
            SPEC.seek_power * OVERHEAD
            + SPEC.active_power * 10.0
            + SPEC.idle_power * (100.0 - 10.0 - OVERHEAD)
        )
        assert drive.energy() == pytest.approx(expected, rel=1e-9)
        assert req.done.processed

    def test_standby_energy(self):
        env = Environment()
        drive = DiskDrive(env, SPEC, idleness_threshold=10.0)
        env.run(until=1_000.0)
        # 10 s idle + 10 s spindown + 980 s standby.
        expected = 9.3 * 10 + 93.0 + 0.8 * 980
        assert drive.energy() == pytest.approx(expected)

    def test_mean_power_between_standby_and_spinup(self):
        env = Environment()
        drive = DiskDrive(env, SPEC, idleness_threshold=60.0)

        def traffic(env):
            for _ in range(10):
                yield env.timeout(200.0)
                drive.submit(0, 72 * MB)

        env.process(traffic(env))
        env.run(until=2_100.0)
        assert SPEC.standby_power < drive.mean_power() < SPEC.spinup_power

    def test_queue_length_time_average(self):
        env = Environment()
        drive = DiskDrive(env, SPEC, idleness_threshold=math.inf)
        drive.submit(0, 720 * MB)
        drive.submit(1, 720 * MB)
        env.run(until=100.0)
        # Little's-law style sanity: average queue > 0 and bounded by 2.
        avg = drive.queue_length.average()
        assert 0.0 < avg < 2.0

    def test_stats_counters(self):
        env = Environment()
        drive = DiskDrive(env, SPEC, idleness_threshold=math.inf)
        for i in range(5):
            drive.submit(i, 10 * MB)
        env.run(until=100.0)
        assert drive.stats.arrivals == 5
        assert drive.stats.completions == 5
        assert drive.stats.bytes_transferred == pytest.approx(50 * MB)
        assert drive.stats.response.count == 5
