"""Property tests: `MultiStateDpmPolicy.two_state` energy accounting against
the classic `DiskDrive` over randomized request streams.

Hypothesis drives the randomization, so failures shrink automatically to a
minimal gap sequence; the `note()` lines print a paste-able reproduction
(the exact arrival times plus the drive construction) alongside the
shrunken example.
"""

import numpy as np
from hypothesis import given, note, settings
from hypothesis import strategies as st

from repro.analysis.dpm import MultiStateDpmPolicy
from repro.disk import DiskDrive, MultiStateDiskDrive, ST3500630AS, make_dpm_ladder
from repro.sim import Environment
from repro.units import MB

SPEC = ST3500630AS

# Gaps straddle every regime: shorter than break-even (~53.3 s), inside
# the spin-down transition window, and deep standby.
gap_lists = st.lists(
    st.floats(min_value=0.05, max_value=400.0,
              allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=40,
)


def _run_drive(make, times, size, horizon):
    env = Environment()
    drive = make(env)

    def feeder(env):
        for t in times:
            yield env.timeout(t - env.now)
            drive.submit(0, size)

    env.process(feeder(env))
    env.run(until=horizon)
    return drive


@given(gaps=gap_lists, size_mb=st.floats(min_value=1.0, max_value=200.0))
@settings(max_examples=60)
def test_two_state_policy_matches_classic_drive(gaps, size_mb):
    """The bridged analysis ladder reproduces the classic drive: same spin
    transitions, responses and energy (to float round-off from the
    beta -> descent-time reconstruction)."""
    times = np.cumsum(np.asarray(gaps))
    size = size_mb * MB
    horizon = float(times[-1]) + 500.0
    note(f"times = {times.tolist()!r}; size = {size!r}")
    note(
        "classic: DiskDrive(env, ST3500630AS); modern: "
        "MultiStateDiskDrive(env, ST3500630AS, "
        "MultiStateDpmPolicy.two_state(ST3500630AS))"
    )

    classic = _run_drive(
        lambda env: DiskDrive(env, SPEC), times, size, horizon
    )
    modern = _run_drive(
        lambda env: MultiStateDiskDrive(
            env, SPEC, MultiStateDpmPolicy.two_state(SPEC)
        ),
        times,
        size,
        horizon,
    )

    assert modern.stats.spinups == classic.stats.spinups
    assert modern.stats.spindowns == classic.stats.spindowns
    assert modern.stats.completions == classic.stats.completions
    if classic.stats.completions:
        assert modern.stats.response.mean == classic.stats.response.mean
    energy_c = classic.energy()
    assert abs(modern.energy() - energy_c) <= 1e-9 * max(1.0, energy_c)


@given(gaps=gap_lists)
@settings(max_examples=60)
def test_ladder_energy_is_conserved(gaps):
    """Energy always equals the label-by-label timeline integral, and the
    residencies tile the elapsed time — across arbitrary descent/ascent
    cycles of the deepest preset ladder."""
    times = np.cumsum(np.asarray(gaps))
    horizon = float(times[-1]) + 150.0
    note(f"times = {times.tolist()!r}")
    ladder = make_dpm_ladder("drpm4", SPEC)
    drive = _run_drive(
        lambda env: MultiStateDiskDrive(env, SPEC, ladder),
        times,
        36 * MB,
        horizon,
    )
    durations = drive.state_durations()
    table = ladder.power_table(SPEC)
    assert drive.energy() == sum(
        table[state] * t for state, t in durations.items()
    )
    assert abs(sum(durations.values()) - horizon) <= 1e-9 * horizon
    # Wakes bill exactly the configured wake time per spin-up, never more.
    max_wake = max(r.wake_time for r in ladder.rungs)
    wake_total = sum(
        t for s, t in durations.items() if s.startswith("wake:")
    )
    assert wake_total <= drive.stats.spinups * max_wake + 1e-9
