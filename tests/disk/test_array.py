"""Unit tests for the disk array aggregation."""

import math

import pytest

from repro.disk import DiskArray, DiskState, ST3500630AS
from repro.errors import ConfigError
from repro.sim import Environment
from repro.units import MB


class TestArray:
    def test_construction(self, env):
        array = DiskArray(env, ST3500630AS, 5, idleness_threshold=math.inf)
        assert len(array) == 5
        assert array[3].disk_id == 3

    def test_invalid_count(self, env):
        with pytest.raises(ConfigError):
            DiskArray(env, ST3500630AS, 0)

    def test_submit_routes_to_disk(self, env):
        array = DiskArray(env, ST3500630AS, 3, idleness_threshold=math.inf)
        req = array.submit(1, file_id=7, size=72 * MB)
        env.run(until=req.done)
        assert array[1].stats.completions == 1
        assert array[0].stats.completions == 0

    def test_total_energy_is_sum(self, env):
        array = DiskArray(env, ST3500630AS, 4, idleness_threshold=math.inf)
        env.run(until=100.0)
        assert array.total_energy() == pytest.approx(
            array.energy_per_disk().sum()
        )
        # All idle: 4 disks * 9.3 W * 100 s.
        assert array.total_energy() == pytest.approx(4 * 9.3 * 100)

    def test_state_durations_aggregate(self, env):
        array = DiskArray(env, ST3500630AS, 2, idleness_threshold=math.inf)
        env.run(until=50.0)
        durations = array.state_durations()
        assert durations[DiskState.IDLE] == pytest.approx(100.0)

    def test_spin_counters(self):
        env = Environment()
        array = DiskArray(env, ST3500630AS, 3, idleness_threshold=10.0)
        env.run(until=100.0)
        assert array.total_spindowns() == 3
        assert array.total_spinups() == 0

    def test_requests_per_disk(self, env):
        array = DiskArray(env, ST3500630AS, 3, idleness_threshold=math.inf)
        array.submit(0, 0, 1 * MB)
        array.submit(0, 1, 1 * MB)
        array.submit(2, 2, 1 * MB)
        env.run(until=10.0)
        assert array.requests_per_disk().tolist() == [2, 0, 1]
        assert array.total_completions() == 3

    def test_always_on_normalization(self, env):
        array = DiskArray(env, ST3500630AS, 10, idleness_threshold=math.inf)
        env.run(until=1_000.0)
        assert array.always_on_energy(1_000.0) == pytest.approx(
            10 * 9.3 * 1_000
        )
        # All-idle array costs exactly the always-on baseline.
        assert array.normalized_power_cost() == pytest.approx(1.0)

    def test_normalized_cost_below_one_with_spindown(self):
        env = Environment()
        array = DiskArray(env, ST3500630AS, 10, idleness_threshold=5.0)
        env.run(until=10_000.0)
        assert array.normalized_power_cost() < 0.2

    def test_negative_duration_rejected(self, env):
        array = DiskArray(env, ST3500630AS, 1)
        with pytest.raises(ConfigError):
            array.always_on_energy(-1.0)
