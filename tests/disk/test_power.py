"""Unit tests for the power model (Figure 1)."""

import pytest

from repro.disk import DiskState, PowerModel


class TestDiskState:
    def test_spinning_classification(self):
        assert DiskState.IDLE.spinning
        assert DiskState.ACTIVE.spinning
        assert DiskState.SPINUP.spinning
        assert not DiskState.STANDBY.spinning

    def test_serving_classification(self):
        assert DiskState.SEEK.serving
        assert DiskState.ACTIVE.serving
        assert not DiskState.IDLE.serving
        assert not DiskState.SPINUP.serving


class TestPowerModel:
    def test_state_powers(self, spec):
        pm = PowerModel(spec)
        assert pm.power(DiskState.IDLE) == 9.3
        assert pm.power(DiskState.STANDBY) == 0.8
        assert pm.power(DiskState.ACTIVE) == 13.0
        assert pm.power(DiskState.SEEK) == 12.6
        assert pm.power(DiskState.SPINUP) == 24.0
        assert pm.power(DiskState.SPINDOWN) == 9.3

    def test_energy_integration(self, spec):
        pm = PowerModel(spec)
        energy = pm.energy({DiskState.IDLE: 100.0, DiskState.STANDBY: 50.0})
        assert energy == pytest.approx(100 * 9.3 + 50 * 0.8)

    def test_energy_unknown_state_raises(self, spec):
        pm = PowerModel(spec)
        with pytest.raises(KeyError):
            pm.energy({"bogus": 1.0})

    def test_always_on_energy(self, spec):
        pm = PowerModel(spec)
        assert pm.always_on_energy(1000.0) == pytest.approx(9300.0)
        busy = pm.always_on_energy(1000.0, serving_fraction=0.5)
        assert busy == pytest.approx(500 * 13.0 + 500 * 9.3)

    def test_power_table_is_copy(self, spec):
        pm = PowerModel(spec)
        table = pm.power_table()
        table[DiskState.IDLE] = 0.0
        assert pm.power(DiskState.IDLE) == 9.3
