"""Tests for the multi-state drive, including exact equivalence with the
classic two-state drive and energy conservation across descent/ascent
cycles (wake transitions bill spin-up power for the *configured* wake
time; descents are explicit, non-abortable transitions)."""

import math

import numpy as np
import pytest

from repro.analysis.dpm import DpmState, MultiStateDpmPolicy
from repro.disk import (
    DiskDrive,
    DpmLadder,
    LadderRung,
    MultiStateDiskDrive,
    ST3500630AS,
    make_dpm_ladder,
)
from repro.errors import ConfigError, SimulationError
from repro.sim import Environment
from repro.units import MB

SPEC = ST3500630AS

NAP_LADDER = [
    DpmState("idle", 9.3, 0.0, 0.0),
    DpmState("nap", 4.0, 60.0, 2.0),
    DpmState("standby", 0.8, 453.0, 15.0),
]


def feed(env, drive, times, size=72 * MB):
    def feeder(env):
        for t in times:
            yield env.timeout(t - env.now)
            drive.submit(0, size)

    env.process(feeder(env))


class TestLadderValidation:
    def test_rung0_must_be_transitionless(self):
        with pytest.raises(ConfigError):
            DpmLadder("bad", (LadderRung("idle", 9.3, entry=1.0),))

    def test_powers_must_decrease(self):
        with pytest.raises(ConfigError):
            DpmLadder(
                "bad",
                (
                    LadderRung("idle", 9.3),
                    LadderRung("deep", 9.3, entry=10.0),
                ),
            )

    def test_descent_must_fit_before_next_entry(self):
        with pytest.raises(ConfigError):
            DpmLadder(
                "bad",
                (
                    LadderRung("idle", 9.3),
                    LadderRung("nap", 4.0, entry=10.0, down_time=30.0),
                    LadderRung("standby", 0.8, entry=20.0),
                ),
            )

    def test_reserved_names_rejected(self):
        with pytest.raises(ConfigError):
            LadderRung("down:x", 1.0)
        with pytest.raises(ConfigError):
            LadderRung("seek", 1.0)

    def test_unknown_preset_rejected(self):
        with pytest.raises(ConfigError):
            make_dpm_ladder("nope", SPEC)


class TestScaledEntries:
    def test_native_threshold_is_exact_identity(self):
        ladder = make_dpm_ladder("drpm4", SPEC)
        assert ladder.scaled_entries(ladder.base_threshold) == ladder.entries

    def test_scaling_moves_every_entry(self):
        ladder = make_dpm_ladder("drpm4", SPEC)
        doubled = ladder.scaled_entries(2 * ladder.base_threshold)
        assert doubled[1] == 2 * ladder.base_threshold
        assert all(
            d >= n for d, n in zip(doubled[1:], ladder.entries[1:])
        )

    def test_zero_threshold_cascades_descents(self):
        ladder = make_dpm_ladder("drpm4", SPEC)
        entries = ladder.scaled_entries(0.0)
        assert entries[1] == 0.0
        # Each later descent waits for the previous transition to finish.
        for i in range(2, len(entries)):
            assert entries[i] == pytest.approx(
                entries[i - 1] + ladder.rungs[i - 1].down_time
            )

    def test_inf_disables_descent(self):
        ladder = make_dpm_ladder("nap", SPEC)
        assert ladder.scaled_entries(math.inf) == (0.0, math.inf, math.inf)


class TestBasicService:
    def test_serves_fifo(self):
        env = Environment()
        drive = MultiStateDiskDrive(
            env, SPEC, MultiStateDpmPolicy(NAP_LADDER)
        )
        first = drive.submit(0, 72 * MB)
        second = drive.submit(1, 72 * MB)
        env.run(until=second.done)
        assert first.done.value < second.done.value

    def test_negative_size_rejected(self):
        env = Environment()
        drive = MultiStateDiskDrive(
            env, SPEC, MultiStateDpmPolicy(NAP_LADDER)
        )
        with pytest.raises(SimulationError):
            drive.submit(0, -1.0)

    def test_descends_ladder_when_idle(self):
        env = Environment()
        drive = MultiStateDiskDrive(env, SPEC, MultiStateDpmPolicy(NAP_LADDER))
        ladder = drive.ladder
        t1, t2 = ladder.rungs[1].entry, ladder.rungs[2].entry
        env.run(until=(t1 + t2) / 2)
        assert drive.state_name == "nap"
        env.run(until=t2 + ladder.rungs[2].down_time + 1.0)
        assert drive.state_name == "standby"
        assert not drive.spinning

    def test_descent_is_not_abortable(self):
        # An arrival mid-descent waits for the transition to finish, then
        # pays the wake — exactly the classic SPINDOWN semantics.
        env = Environment()
        ladder = make_dpm_ladder("two_state", SPEC)
        drive = MultiStateDiskDrive(env, SPEC, ladder)
        entry = ladder.rungs[1].entry
        arrival = entry + SPEC.spindown_time / 2
        feed(env, drive, [arrival])
        env.run(until=arrival + 100.0)
        expected_start = entry + SPEC.spindown_time + SPEC.spinup_time
        response = drive.stats.response.mean
        assert response == pytest.approx(
            expected_start - arrival + SPEC.access_overhead + 1.0, abs=1e-9
        )

    def test_wake_from_nap_is_cheaper_than_standby(self):
        policy = MultiStateDpmPolicy(NAP_LADDER)
        t1, t2 = policy.thresholds()

        def response_after(idle_gap):
            env = Environment()
            drive = MultiStateDiskDrive(env, SPEC, policy)
            feed(env, drive, [idle_gap])
            env.run(until=idle_gap + 200.0)
            return drive.stats.response.mean

        from_nap = response_after((t1 + t2) / 2)
        from_standby = response_after(t2 * 3)
        assert from_nap < from_standby
        assert from_standby == pytest.approx(15.0 + 1.0, abs=0.1)

    def test_arrival_before_first_threshold_no_penalty(self):
        env = Environment()
        policy = MultiStateDpmPolicy(NAP_LADDER)
        drive = MultiStateDiskDrive(env, SPEC, policy)
        feed(env, drive, [10.0])
        env.run(until=100.0)
        assert drive.stats.spinups == 0
        assert drive.stats.response.mean == pytest.approx(
            1.0 + SPEC.access_overhead, abs=1e-6
        )

    def test_threshold_scales_descent(self):
        # Halving the drive's threshold halves the first descent time.
        env = Environment()
        ladder = make_dpm_ladder("nap", SPEC)
        drive = MultiStateDiskDrive(
            env, SPEC, ladder, idleness_threshold=ladder.base_threshold / 2
        )
        env.run(until=ladder.base_threshold / 2 + ladder.rungs[1].down_time + 0.5)
        assert drive.state_name == "nap"


class TestEnergyAccounting:
    def test_durations_cover_elapsed(self):
        env = Environment()
        drive = MultiStateDiskDrive(
            env, SPEC, MultiStateDpmPolicy(NAP_LADDER)
        )
        feed(env, drive, [50.0, 400.0, 2_000.0])
        env.run(until=5_000.0)
        assert sum(drive.state_durations().values()) == pytest.approx(5_000.0)

    def test_energy_conserved_across_descent_ascent_cycles(self):
        """Regression: energy must equal the label-by-label integral of the
        timeline — wakes billed at wake power for the *configured* wake
        time, descents at down power for the descent time, no lump sums.
        The old drive folded a spin-down-shaped residue into the wake and
        double-billed standby residency during the transition window.
        """
        env = Environment()
        ladder = make_dpm_ladder("drpm4", SPEC)
        drive = MultiStateDiskDrive(env, SPEC, ladder)
        rng = np.random.default_rng(3)
        times = np.cumsum(rng.exponential(90.0, size=80))
        feed(env, drive, times)
        env.run(until=float(times[-1]) + 500.0)
        assert drive.stats.spinups > 0
        durations = drive.state_durations()
        table = ladder.power_table(SPEC)
        assert drive.energy() == sum(
            table[state] * t for state, t in durations.items()
        )
        # Wake residency is exactly (wake count) x (configured wake times).
        wake_time = sum(
            t for s, t in durations.items() if s.startswith("wake:")
        )
        per_wake = {
            f"wake:{r.name}": r.wake_time for r in ladder.rungs[1:]
        }
        assert wake_time <= drive.stats.spinups * max(per_wake.values())
        assert sum(durations.values()) == pytest.approx(env.now)

    def test_two_state_ladder_matches_classic_drive_exactly(self):
        """The generalized drive with Table 2's two-state ladder is the
        classic DiskDrive bit for bit: same spin transitions, same
        response times, same energy."""
        rng = np.random.default_rng(5)
        times = np.cumsum(rng.exponential(120.0, size=300))

        env_a = Environment()
        classic = DiskDrive(env_a, SPEC)  # break-even threshold
        feed(env_a, classic, times)
        env_a.run(until=float(times[-1]) + 100.0)

        env_b = Environment()
        modern = MultiStateDiskDrive(
            env_b, SPEC, make_dpm_ladder("two_state", SPEC)
        )
        feed(env_b, modern, times)
        env_b.run(until=float(times[-1]) + 100.0)

        assert modern.stats.spinups == classic.stats.spinups
        assert modern.stats.spindowns == classic.stats.spindowns
        assert modern.stats.completions == classic.stats.completions
        assert modern.stats.response.mean == classic.stats.response.mean
        assert modern.energy() == classic.energy()
        mapping = {
            "idle": "idle",
            "standby": "standby",
            "seek": "seek",
            "active": "active",
            "spinup": "wake:standby",
            "spindown": "down:standby",
        }
        modern_durations = modern.state_durations()
        for state, t in classic.state_durations().items():
            assert modern_durations.get(mapping[state.value], 0.0) == t

    def test_policy_bridge_matches_classic_to_float_noise(self):
        """MultiStateDpmPolicy.two_state bridged through from_policy keeps
        the classic energy accounting (the descent residue reconstructs
        the spin-down transition up to float round-off)."""
        rng = np.random.default_rng(9)
        times = np.cumsum(rng.exponential(150.0, size=150))

        env_a = Environment()
        classic = DiskDrive(env_a, SPEC)
        feed(env_a, classic, times)
        env_a.run(until=float(times[-1]) + 100.0)

        env_b = Environment()
        modern = MultiStateDiskDrive(
            env_b, SPEC, MultiStateDpmPolicy.two_state(SPEC)
        )
        feed(env_b, modern, times)
        env_b.run(until=float(times[-1]) + 100.0)

        assert modern.stats.spinups == classic.stats.spinups
        assert modern.energy() == pytest.approx(classic.energy(), rel=1e-9)
        assert modern.stats.response.mean == pytest.approx(
            classic.stats.response.mean, rel=1e-9
        )

    def test_nap_state_saves_energy_on_medium_gaps(self):
        # Gaps sized for the nap state: the three-state ladder must beat
        # the two-state ladder on energy.
        policy3 = MultiStateDpmPolicy(NAP_LADDER)
        t1, t2 = policy3.thresholds()
        gap = (t1 + t2) / 2
        times = np.cumsum(np.full(100, gap))

        def run(policy):
            env = Environment()
            drive = MultiStateDiskDrive(env, SPEC, policy)
            feed(env, drive, times)
            env.run(until=float(times[-1]) + 10.0)
            return drive.energy()

        two_state = MultiStateDpmPolicy(
            [NAP_LADDER[0], NAP_LADDER[2]]
        )
        assert run(policy3) < run(two_state)

    def test_gap_log_matches_classic_contract(self):
        env = Environment()
        drive = MultiStateDiskDrive(
            env, SPEC, make_dpm_ladder("nap", SPEC)
        )
        drive.log_gaps = True
        feed(env, drive, [40.0, 45.0, 300.0])
        env.run(until=400.0)
        gaps = [g for g, _ in drive.gap_log]
        assert gaps[0] == pytest.approx(40.0)
        assert all(th == drive.threshold for _, th in drive.gap_log)
