"""Tests for the multi-state drive, including equivalence with the classic
two-state drive."""

import numpy as np
import pytest

from repro.analysis.dpm import DpmState, MultiStateDpmPolicy
from repro.disk import DiskDrive, ST3500630AS
from repro.disk.multistate import MultiStateDiskDrive
from repro.errors import SimulationError
from repro.sim import Environment
from repro.units import MB

SPEC = ST3500630AS

NAP_LADDER = [
    DpmState("idle", 9.3, 0.0, 0.0),
    DpmState("nap", 4.0, 60.0, 2.0),
    DpmState("standby", 0.8, 453.0, 15.0),
]


def feed(env, drive, times, size=72 * MB):
    def feeder(env):
        for t in times:
            yield env.timeout(t - env.now)
            drive.submit(0, size)

    env.process(feeder(env))


class TestBasicService:
    def test_serves_fifo(self):
        env = Environment()
        drive = MultiStateDiskDrive(
            env, SPEC, MultiStateDpmPolicy(NAP_LADDER)
        )
        first = drive.submit(0, 72 * MB)
        second = drive.submit(1, 72 * MB)
        env.run(until=second.done)
        assert first.done.value < second.done.value

    def test_negative_size_rejected(self):
        env = Environment()
        drive = MultiStateDiskDrive(
            env, SPEC, MultiStateDpmPolicy(NAP_LADDER)
        )
        with pytest.raises(SimulationError):
            drive.submit(0, -1.0)

    def test_descends_ladder_when_idle(self):
        env = Environment()
        policy = MultiStateDpmPolicy(NAP_LADDER)
        drive = MultiStateDiskDrive(env, SPEC, policy)
        t1, t2 = policy.thresholds()
        env.run(until=(t1 + t2) / 2)
        assert drive.state_name == "nap"
        env.run(until=t2 + 10)
        assert drive.state_name == "standby"

    def test_wake_from_nap_is_cheaper_than_standby(self):
        policy = MultiStateDpmPolicy(NAP_LADDER)
        t1, t2 = policy.thresholds()

        def response_after(idle_gap):
            env = Environment()
            drive = MultiStateDiskDrive(env, SPEC, policy)
            feed(env, drive, [idle_gap])
            env.run(until=idle_gap + 200.0)
            return drive.stats.response.mean

        from_nap = response_after((t1 + t2) / 2)
        from_standby = response_after(t2 * 3)
        assert from_nap < from_standby
        assert from_standby == pytest.approx(15.0 + 1.0, abs=0.1)

    def test_arrival_before_first_threshold_no_penalty(self):
        env = Environment()
        policy = MultiStateDpmPolicy(NAP_LADDER)
        drive = MultiStateDiskDrive(env, SPEC, policy)
        feed(env, drive, [10.0])
        env.run(until=100.0)
        assert drive.stats.spinups == 0
        assert drive.stats.response.mean == pytest.approx(
            1.0 + SPEC.access_overhead, abs=1e-6
        )


class TestEnergyAccounting:
    def test_durations_cover_elapsed(self):
        env = Environment()
        drive = MultiStateDiskDrive(
            env, SPEC, MultiStateDpmPolicy(NAP_LADDER)
        )
        feed(env, drive, [50.0, 400.0, 2_000.0])
        env.run(until=5_000.0)
        assert sum(drive.state_durations().values()) == pytest.approx(5_000.0)

    def test_two_state_ladder_matches_classic_drive(self):
        # The generalized drive with Table 2's two-state ladder must agree
        # with the classic DiskDrive within ~2% (the ladder bills the 10 s
        # spin-down at standby power + a lump sum instead of a SPINDOWN
        # residency; everything else is identical).
        rng = np.random.default_rng(5)
        times = np.cumsum(rng.exponential(120.0, size=300))

        env_a = Environment()
        classic = DiskDrive(env_a, SPEC)  # break-even threshold
        feed(env_a, classic, times)
        env_a.run(until=float(times[-1]) + 100.0)

        env_b = Environment()
        modern = MultiStateDiskDrive(
            env_b, SPEC, MultiStateDpmPolicy.two_state(SPEC)
        )
        feed(env_b, modern, times)
        env_b.run(until=float(times[-1]) + 100.0)

        assert modern.stats.spinups == classic.stats.spinups
        assert modern.stats.completions == classic.stats.completions
        assert modern.mean_power() == pytest.approx(
            classic.mean_power(), rel=0.02
        )

    def test_nap_state_saves_energy_on_medium_gaps(self):
        # Gaps sized for the nap state: the three-state ladder must beat
        # the two-state ladder on energy.
        rng = np.random.default_rng(6)
        policy3 = MultiStateDpmPolicy(NAP_LADDER)
        t1, t2 = policy3.thresholds()
        gap = (t1 + t2) / 2
        times = np.cumsum(np.full(100, gap))

        def run(policy):
            env = Environment()
            drive = MultiStateDiskDrive(env, SPEC, policy)
            feed(env, drive, times)
            env.run(until=float(times[-1]) + 10.0)
            return drive.energy()

        two_state = MultiStateDpmPolicy(
            [NAP_LADDER[0], NAP_LADDER[2]]
        )
        assert run(policy3) < run(two_state)
