"""Unit tests for the service-time model."""

import numpy as np
import pytest

from repro.disk import ServiceModel
from repro.errors import ConfigError
from repro.units import MB


class TestServiceTime:
    def test_full_mode_includes_overhead(self, spec):
        sm = ServiceModel(spec, "full")
        assert sm.service_time(72 * MB) == pytest.approx(1.0 + 0.01266)

    def test_transfer_mode_is_pure_transfer(self, spec):
        sm = ServiceModel(spec, "transfer")
        assert sm.service_time(72 * MB) == pytest.approx(1.0)
        assert sm.overhead == 0.0

    def test_vectorized(self, spec):
        sm = ServiceModel(spec, "full")
        sizes = np.array([72 * MB, 144 * MB])
        times = sm.service_time(sizes)
        assert times.shape == (2,)
        assert times[1] == pytest.approx(2.0 + 0.01266)

    def test_monotone_in_size(self, spec):
        sm = ServiceModel(spec)
        sizes = np.linspace(1 * MB, 1000 * MB, 50)
        times = sm.service_time(sizes)
        assert np.all(np.diff(times) > 0)

    def test_unknown_mode_rejected(self, spec):
        with pytest.raises(ConfigError):
            ServiceModel(spec, "warp")


class TestMoments:
    def test_uniform_mix(self, spec):
        sm = ServiceModel(spec, "transfer")
        es, es2 = sm.service_moments(
            np.array([72 * MB, 144 * MB]), np.array([0.5, 0.5])
        )
        assert es == pytest.approx(1.5)
        assert es2 == pytest.approx(0.5 * 1 + 0.5 * 4)

    def test_weights_normalized(self, spec):
        sm = ServiceModel(spec, "transfer")
        es_a, _ = sm.service_moments(np.array([72 * MB]), np.array([2.0]))
        es_b, _ = sm.service_moments(np.array([72 * MB]), np.array([1.0]))
        assert es_a == es_b

    def test_zero_weights_rejected(self, spec):
        sm = ServiceModel(spec)
        with pytest.raises(ConfigError):
            sm.service_moments(np.array([1.0]), np.array([0.0]))

    def test_shape_mismatch_rejected(self, spec):
        sm = ServiceModel(spec)
        with pytest.raises(ConfigError):
            sm.service_moments(np.array([1.0, 2.0]), np.array([1.0]))


class TestLoads:
    def test_load_formula(self, spec):
        sm = ServiceModel(spec, "transfer")
        loads = sm.loads(
            np.array([72 * MB]), np.array([1.0]), arrival_rate=0.5
        )
        # l = R * p * s/rate = 0.5 * 1.0 * 1.0
        assert loads[0] == pytest.approx(0.5)

    def test_loads_scale_with_rate(self, spec):
        sm = ServiceModel(spec)
        sizes = np.array([100 * MB, 200 * MB])
        pops = np.array([0.7, 0.3])
        l1 = sm.loads(sizes, pops, 1.0)
        l4 = sm.loads(sizes, pops, 4.0)
        assert np.allclose(l4, 4 * l1)

    def test_negative_rate_rejected(self, spec):
        sm = ServiceModel(spec)
        with pytest.raises(ConfigError):
            sm.loads(np.array([1.0]), np.array([1.0]), -1.0)

    def test_shape_mismatch_rejected(self, spec):
        sm = ServiceModel(spec)
        with pytest.raises(ConfigError):
            sm.loads(np.array([1.0, 2.0]), np.array([1.0]), 1.0)
