"""Unit tests for heterogeneous fleet profiles and their resolution."""

import numpy as np
import pytest

from repro.disk.dpm import make_dpm_ladder
from repro.disk.fleet import (
    FLEETS,
    Fleet,
    FleetDisk,
    fleet_names,
    make_fleet,
)
from repro.disk.specs import ST3500630AS, WD10EADS
from repro.errors import ConfigError


class TestProfileTiling:
    def test_profile_tiles_across_the_pool(self):
        fleet = make_fleet("mixed_generation")
        resolved = fleet.resolve(5)
        assert [s.model for s in resolved.specs] == [
            ST3500630AS.model,
            WD10EADS.model,
            ST3500630AS.model,
            WD10EADS.model,
            ST3500630AS.model,
        ]
        assert resolved.capacities[0] == ST3500630AS.capacity
        assert resolved.capacities[1] == WD10EADS.capacity

    def test_uniform_sugar_is_homogeneous(self):
        resolved = Fleet.uniform(ST3500630AS).resolve(4)
        assert resolved.homogeneous
        assert not resolved.has_ladders
        np.testing.assert_allclose(
            resolved.thresholds, ST3500630AS.breakeven_threshold()
        )

    def test_mixed_specs_are_not_homogeneous(self):
        resolved = make_fleet("mixed_generation").resolve(2)
        assert not resolved.homogeneous
        assert not resolved.homogeneous_specs


class TestLadderResolution:
    def test_partial_ladders_backfill_two_state(self):
        fleet = Fleet(
            "partial",
            (FleetDisk(ST3500630AS, ladder="drpm4"), FleetDisk(WD10EADS)),
        )
        resolved = fleet.resolve(4)
        assert resolved.has_ladders
        assert resolved.ladders[0] == make_dpm_ladder("drpm4", ST3500630AS)
        # The ladderless green slot gets *its own spec's* two-state rung.
        assert resolved.ladders[1] == make_dpm_ladder("two_state", WD10EADS)

    def test_no_ladders_anywhere_stays_ladderless(self):
        resolved = make_fleet("mixed_generation").resolve(4)
        assert not resolved.has_ladders
        assert resolved.ladders == (None, None, None, None)

    def test_config_default_ladder_applies_to_every_slot(self):
        resolved = make_fleet("mixed_generation").resolve(
            2, default_ladder="nap"
        )
        assert resolved.ladders[0] == make_dpm_ladder("nap", ST3500630AS)
        assert resolved.ladders[1] == make_dpm_ladder("nap", WD10EADS)

    def test_ladder_groups_cover_the_pool_once(self):
        fleet = Fleet(
            "partial",
            (FleetDisk(ST3500630AS, ladder="drpm4"), FleetDisk(WD10EADS)),
        )
        groups = fleet.resolve(6).ladder_groups()
        members = np.concatenate([idx for _, idx in groups])
        assert sorted(members.tolist()) == list(range(6))
        assert len(groups) == 2


class TestThresholdFallback:
    def test_slot_threshold_beats_config_default(self):
        fleet = Fleet(
            "t", (FleetDisk(ST3500630AS, threshold=7.0), FleetDisk(WD10EADS))
        )
        resolved = fleet.resolve(2, default_threshold=99.0)
        assert resolved.thresholds[0] == 7.0
        assert resolved.thresholds[1] == 99.0

    def test_unset_threshold_falls_back_to_spec_breakeven(self):
        resolved = make_fleet("mixed_generation").resolve(2)
        assert resolved.thresholds[0] == ST3500630AS.breakeven_threshold()
        assert resolved.thresholds[1] == WD10EADS.breakeven_threshold()

    def test_ladder_entry_beats_spec_breakeven(self):
        fleet = Fleet("l", (FleetDisk(ST3500630AS, ladder="drpm4"),))
        resolved = fleet.resolve(1)
        ladder = make_dpm_ladder("drpm4", ST3500630AS)
        assert resolved.thresholds[0] == ladder.base_threshold


class TestValidation:
    def test_unknown_preset_rejected(self):
        with pytest.raises(ConfigError, match="unknown fleet"):
            make_fleet("nope")

    def test_registry_and_names_agree(self):
        assert fleet_names() == tuple(FLEETS)
        assert "mixed_generation" in fleet_names()

    def test_empty_profile_rejected(self):
        with pytest.raises(ConfigError, match="at least one"):
            Fleet("empty", ())

    def test_bad_slot_ladder_rejected(self):
        with pytest.raises(ConfigError, match="unknown DPM ladder"):
            FleetDisk(ST3500630AS, ladder="not_a_ladder")

    def test_negative_slot_threshold_rejected(self):
        with pytest.raises(ConfigError, match=">= 0"):
            FleetDisk(ST3500630AS, threshold=-1.0)

    def test_non_spec_slot_rejected(self):
        with pytest.raises(ConfigError, match="DiskSpec"):
            FleetDisk("ST3500630AS")

    def test_zero_disks_rejected(self):
        with pytest.raises(ConfigError, match="num_disks"):
            make_fleet("mixed_generation").resolve(0)

    def test_describe_counts_models(self):
        text = make_fleet("mixed_generation").resolve(5).describe()
        assert ST3500630AS.model in text
        assert WD10EADS.model in text
        assert "3x" in text and "2x" in text
