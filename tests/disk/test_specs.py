"""Unit tests for the disk spec (Table 2)."""

import pytest

from repro.errors import ConfigError
from repro.units import GB, MB


class TestST3500630AS:
    def test_table2_values(self, spec):
        assert spec.capacity == 500 * GB
        assert spec.transfer_rate == 72 * MB
        assert spec.avg_seek_time == pytest.approx(0.0085)
        assert spec.avg_rotation_time == pytest.approx(0.00416)
        assert spec.idle_power == 9.3
        assert spec.standby_power == 0.8
        assert spec.active_power == 13.0
        assert spec.seek_power == 12.6
        assert spec.spinup_power == 24.0
        assert spec.spindown_power == 9.3
        assert spec.spinup_time == 15.0
        assert spec.spindown_time == 10.0

    def test_breakeven_matches_paper(self, spec):
        # Table 2 lists the idleness threshold as 53.3 s.
        assert spec.breakeven_threshold() == pytest.approx(53.3, abs=0.05)

    def test_transition_energy(self, spec):
        assert spec.spindown_energy == pytest.approx(93.0)
        assert spec.spinup_energy == pytest.approx(360.0)
        assert spec.transition_energy == pytest.approx(453.0)

    def test_access_overhead(self, spec):
        assert spec.access_overhead == pytest.approx(0.01266)

    def test_transfer_time(self, spec):
        assert spec.transfer_time(72 * MB) == pytest.approx(1.0)
        assert spec.transfer_time(0) == 0.0

    def test_table2_rows_render(self, spec):
        rows = spec.table2_rows()
        assert rows["Disk model"] == "Seagate ST3500630AS"
        assert rows["Idleness threshold"] == "53.3 secs"
        assert rows["Disk load (Transfer rate)"] == "72 MBytes/sec"


class TestValidation:
    def test_negative_field_rejected(self, spec):
        with pytest.raises(ConfigError):
            spec.with_overrides(avg_seek_time=-1.0)

    def test_standby_above_idle_rejected(self, spec):
        with pytest.raises(ConfigError):
            spec.with_overrides(standby_power=10.0)

    def test_zero_capacity_rejected(self, spec):
        with pytest.raises(ConfigError):
            spec.with_overrides(capacity=0)

    def test_with_overrides_creates_copy(self, spec):
        faster = spec.with_overrides(transfer_rate=100 * MB)
        assert faster.transfer_rate == 100 * MB
        assert spec.transfer_rate == 72 * MB
        assert faster.model == spec.model
