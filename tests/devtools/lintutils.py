"""Shared helpers for the reprolint test suite (imported bare, like
``tests/differential/diffgen.py`` — pytest puts this directory on the
path when collecting the sibling test modules)."""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Set

from repro.devtools.engine import Linter, Violation

FIXTURES = Path(__file__).parent / "fixtures"

#: The real repository root (the tree the meta-tests lint).
REPO_ROOT = Path(__file__).resolve().parents[2]


def run_lint(
    root: Path,
    targets: Optional[Sequence[Path]] = None,
    select: Optional[Set[str]] = None,
) -> List[Violation]:
    """Run the linter and return its violations (sorted by the engine)."""
    linter = Linter(Path(root))
    if select is not None:
        linter.select(select)
    if targets is None:
        targets = [Path(root) / "src"]
    return linter.run([Path(t) for t in targets])


def rule_ids(violations: Iterable[Violation]) -> List[str]:
    return [v.rule_id for v in violations]
