"""Engine-level tests: suppressions, parse errors, selection, output."""

from __future__ import annotations

from pathlib import Path

from repro.devtools.engine import (
    PARSE_ERROR_ID,
    Suppressions,
    Violation,
    dotted_chain,
    maximal_attribute_chains,
)
from repro.devtools.lint import discover_root, list_rules, main

from lintutils import rule_ids, run_lint


class TestSuppressions:
    def test_line_suppression(self):
        sup = Suppressions.scan("x = 1  # reprolint: disable=R001\n")
        assert sup.active("R001", 1)
        assert not sup.active("R001", 2)
        assert not sup.active("R002", 1)

    def test_multiple_rules_comma_separated(self):
        sup = Suppressions.scan("x = 1  # reprolint: disable=R001, R004\n")
        assert sup.active("R001", 1)
        assert sup.active("R004", 1)

    def test_file_suppression_applies_everywhere(self):
        sup = Suppressions.scan("# reprolint: disable-file=R005\nx = 1\n")
        assert sup.active("R005", 1)
        assert sup.active("R005", 99)

    def test_marker_inside_string_is_not_a_suppression(self):
        sup = Suppressions.scan('x = "# reprolint: disable=R001"\n')
        assert not sup.active("R001", 1)


class TestAstHelpers:
    def test_dotted_chain(self):
        import ast

        expr = ast.parse("a.b.c").body[0].value
        assert dotted_chain(expr) == ["a", "b", "c"]
        call = ast.parse("f().b").body[0].value
        assert dotted_chain(call) is None

    def test_maximal_chains_skip_inner_nodes(self):
        import ast

        tree = ast.parse("np.random.default_rng(0)")
        chains = [c for _, c in maximal_attribute_chains(tree)]
        assert ["np", "random", "default_rng"] in chains
        assert ["np", "random"] not in chains


class TestEngine:
    def test_syntax_error_becomes_e999(self, sandbox):
        root = sandbox((None, "src/repro/broken.py", "def f(:\n"))
        found = run_lint(root)
        assert rule_ids(found) == [PARSE_ERROR_ID]

    def test_select_restricts_rules(self, sandbox):
        root = sandbox(
            ("r001_bad.py", "src/repro/workload/mod.py"),
        )
        everything = run_lint(root)
        only_r001 = run_lint(root, select={"R001"})
        assert set(rule_ids(only_r001)) == {"R001"}
        assert len(only_r001) <= len(everything)

    def test_violation_render_is_path_line_rule(self):
        v = Violation(Path("/x/y.py"), 3, "R001", "msg")
        assert v.render() == "/x/y.py:3: R001 msg"
        assert v.render(base=Path("/x")) == "y.py:3: R001 msg"

    def test_suppressed_fixture_is_clean(self, sandbox):
        root = sandbox(("r001_suppressed.py", "src/repro/workload/mod.py"))
        assert run_lint(root) == []

    def test_out_of_scope_paths_are_ignored(self, sandbox):
        # The same bad RNG outside src/repro is none of R001's business.
        root = sandbox(("r001_bad.py", "scripts/mod.py"))
        assert run_lint(root, targets=[root / "scripts"]) == []


class TestCli:
    def test_exit_zero_on_clean_tree(self, sandbox, capsys):
        root = sandbox(("r001_good.py", "src/repro/workload/mod.py"))
        assert main([str(root / "src"), "--root", str(root)]) == 0

    def test_exit_one_and_structured_output_on_findings(self, sandbox, capsys):
        root = sandbox(("r001_bad.py", "src/repro/workload/mod.py"))
        code = main([str(root / "src"), "--root", str(root)])
        out = capsys.readouterr().out
        assert code == 1
        assert "R001" in out
        # path:line: RULE-ID message
        first = out.splitlines()[0]
        path_part, line_part, rest = first.split(":", 2)
        assert path_part.endswith("mod.py")
        assert line_part.isdigit()
        assert rest.strip().startswith("R001")

    def test_list_rules_covers_catalog(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rid in ("R001", "R002", "R003", "R004", "R005", "R006"):
            assert rid in out
        assert list_rules() == out.strip()

    def test_select_flag(self, sandbox, capsys):
        root = sandbox(
            ("r001_bad.py", "src/repro/workload/mod.py"),
            ("r004_bad.py", "src/repro/sim/mod.py"),
        )
        code = main(
            [str(root / "src"), "--root", str(root), "--select", "R004"]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "R004" in out
        assert "R001" not in out

    def test_discover_root_walks_to_pyproject(self, sandbox):
        root = sandbox(("r001_good.py", "src/repro/workload/mod.py"))
        nested = root / "src" / "repro" / "workload" / "mod.py"
        assert discover_root(nested) == root
