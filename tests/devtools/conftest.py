"""Fixtures for the reprolint test suite.

The linter's file rules scope by project-relative path, and its project
rules anchor on specific files (the salt manifest, the registries, the
coverage corpus).  Tests therefore build throwaway *sandbox* project
trees under ``tmp_path``: a ``pyproject.toml`` marker at the root plus
fixture snippets copied to whatever relative path puts them in (or out
of) a rule's scope.
"""

from __future__ import annotations

from pathlib import Path

import pytest

FIXTURES = Path(__file__).parent / "fixtures"


@pytest.fixture
def sandbox(tmp_path):
    """Build a sandbox project tree from (fixture_name, rel_dest) pairs.

    Returns the sandbox root.  Each fixture file from ``fixtures/`` is
    copied to its destination; ``(None, rel_dest, text)`` triples write
    literal file contents instead.
    """

    def build(*placements):
        (tmp_path / "pyproject.toml").write_text("", encoding="utf-8")
        for placement in placements:
            if len(placement) == 2:
                fixture_name, rel = placement
                text = (FIXTURES / fixture_name).read_text(encoding="utf-8")
            else:
                fixture_name, rel, text = placement
                assert fixture_name is None
            dest = tmp_path / rel
            dest.parent.mkdir(parents=True, exist_ok=True)
            dest.write_text(text, encoding="utf-8")
        return tmp_path

    return build
