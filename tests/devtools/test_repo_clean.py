"""Meta-tests: the shipped tree itself passes the full check suite.

``reprolint`` always runs (it is part of this repo).  The conventional
checkers (ruff, mypy) run when installed and skip otherwise — the CI
lint job installs both, so they are enforced on every push even though
minimal local environments may lack them.
"""

from __future__ import annotations

import importlib.util
import os
import subprocess
import sys

import pytest

from lintutils import REPO_ROOT, run_lint


def _env_with_src():
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not existing else src + os.pathsep + existing
    return env


def test_reprolint_clean_on_src(capsys):
    """Acceptance criterion: `python -m repro.devtools.lint src/repro`
    exits 0 on the final tree."""
    found = run_lint(REPO_ROOT, targets=[REPO_ROOT / "src" / "repro"])
    assert [v.render(base=REPO_ROOT) for v in found] == []


def test_reprolint_cli_clean_on_src():
    """Same check through the real CLI entry point (module spawn)."""
    proc = subprocess.run(
        [sys.executable, "-m", "repro.devtools.lint", "src/repro"],
        cwd=REPO_ROOT,
        env=_env_with_src(),
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr


def _has(module):
    return importlib.util.find_spec(module) is not None


@pytest.mark.skipif(not _has("ruff"), reason="ruff not installed")
def test_ruff_clean():
    proc = subprocess.run(
        [sys.executable, "-m", "ruff", "check", "src", "tests", "benchmarks"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr


@pytest.mark.skipif(not _has("mypy"), reason="mypy not installed")
def test_mypy_strict_set_clean():
    # The module set lives in pyproject.toml ([tool.mypy] files=...).
    proc = subprocess.run(
        [sys.executable, "-m", "mypy"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
