"""Project-rule tests: R002 (salt manifest) and R003 (registry parity).

The R002 cases include the acceptance criterion's mutation-style test:
copy the *real* ``StorageConfig`` + salt manifest into a sandbox, graft a
fake config field onto the class, and prove the linter catches the
unsalted field.
"""

from __future__ import annotations

import ast
import json

import pytest

from lintutils import REPO_ROOT, rule_ids, run_lint

CONFIG_REL = "src/repro/system/config.py"
MANIFEST_REL = "src/repro/devtools/salt_manifest.json"
ORCH_REL = "src/repro/experiments/orchestrator.py"


def _real(rel):
    return (REPO_ROOT / rel).read_text(encoding="utf-8")


def _with_fake_field(config_src, field_line="totally_new_knob: float = 0.0"):
    """Insert an (unsalted) field after StorageConfig's last field."""
    tree = ast.parse(config_src)
    last_end = None
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == "StorageConfig":
            ann = [s for s in node.body if isinstance(s, ast.AnnAssign)]
            assert ann, "StorageConfig has no annotated fields?"
            last_end = max(s.end_lineno for s in ann)
    assert last_end is not None, "StorageConfig not found"
    lines = config_src.splitlines(keepends=True)
    lines.insert(last_end, f"    {field_line}\n")
    return "".join(lines)


def _real_project(sandbox):
    return sandbox(
        (None, CONFIG_REL, _real(CONFIG_REL)),
        (None, MANIFEST_REL, _real(MANIFEST_REL)),
        (None, ORCH_REL, _real(ORCH_REL)),
    )


class TestR002:
    def test_real_config_and_manifest_agree(self, sandbox):
        root = _real_project(sandbox)
        assert run_lint(root, select={"R002"}) == []

    def test_mutation_fake_field_is_caught(self, sandbox):
        """Acceptance criterion: adding a StorageConfig field without
        updating the manifest is a lint error."""
        root = _real_project(sandbox)
        mutated = _with_fake_field(_real(CONFIG_REL))
        (root / CONFIG_REL).write_text(mutated, encoding="utf-8")
        found = run_lint(root, select={"R002"})
        assert rule_ids(found) == ["R002"]
        assert "totally_new_knob" in found[0].message
        assert "RESULT_SCHEMA_VERSION" in found[0].message
        assert found[0].path == (root / CONFIG_REL).resolve()

    def test_stale_manifest_entry_is_caught(self, sandbox):
        root = _real_project(sandbox)
        manifest = json.loads(_real(MANIFEST_REL))
        manifest["fields"].append("ghost_field")
        (root / MANIFEST_REL).write_text(json.dumps(manifest))
        found = run_lint(root, select={"R002"})
        assert rule_ids(found) == ["R002"]
        assert "ghost_field" in found[0].message

    def test_schema_version_mismatch_is_caught(self, sandbox):
        root = _real_project(sandbox)
        manifest = json.loads(_real(MANIFEST_REL))
        manifest["schema_version"] = manifest["schema_version"] - 1
        (root / MANIFEST_REL).write_text(json.dumps(manifest))
        found = run_lint(root, select={"R002"})
        assert rule_ids(found) == ["R002"]
        assert "RESULT_SCHEMA_VERSION" in found[0].message

    def test_invalid_manifest_json_is_one_finding(self, sandbox):
        root = _real_project(sandbox)
        (root / MANIFEST_REL).write_text("{not json")
        found = run_lint(root, select={"R002"})
        assert rule_ids(found) == ["R002"]
        assert "JSON" in found[0].message

    def test_sandbox_without_anchors_skips(self, sandbox):
        root = sandbox((None, "src/repro/mod.py", "x = 1\n"))
        assert run_lint(root, select={"R002"}) == []


_PLACEMENT_SRC = '''\
def register_placement(cls):
    return cls


@register_placement
class Covered:
    name = "covered_policy"


@register_placement
class Uncovered:
    name = "uncovered_policy"
'''

_DPM_SRC = '''\
DPM_LADDERS = {
    "two_state": object(),
    "ghost_ladder": object(),
}


def dpm_ladder_names():
    return tuple(DPM_LADDERS)
'''


class TestR003:
    def test_uncovered_registry_entries_fire(self, sandbox):
        root = sandbox(
            (None, "src/repro/system/placement.py", _PLACEMENT_SRC),
            (
                None,
                "tests/differential/test_grid.py",
                'GRID = ["covered_policy"]\n',
            ),
        )
        found = run_lint(root, select={"R003"})
        assert rule_ids(found) == ["R003"]
        assert "uncovered_policy" in found[0].message

    def test_iterator_reference_covers_whole_registry(self, sandbox):
        root = sandbox(
            (None, "src/repro/system/placement.py", _PLACEMENT_SRC),
            (
                None,
                "tests/differential/test_grid.py",
                "from repro.system.placement import placement_policy_names\n"
                "GRID = list(placement_policy_names())\n",
            ),
        )
        assert run_lint(root, select={"R003"}) == []

    def test_dict_registry_entries_fire(self, sandbox):
        root = sandbox(
            (None, "src/repro/disk/dpm.py", _DPM_SRC),
            (
                None,
                "tests/differential/test_grid.py",
                'LADDERS = ["two_state"]\n',
            ),
        )
        found = run_lint(root, select={"R003"})
        assert rule_ids(found) == ["R003"]
        assert "ghost_ladder" in found[0].message

    def test_no_registries_skips(self, sandbox):
        root = sandbox((None, "src/repro/mod.py", "x = 1\n"))
        assert run_lint(root, select={"R003"}) == []

    def test_real_repo_registries_are_covered(self):
        found = run_lint(REPO_ROOT, targets=[], select={"R003"})
        assert [v.render() for v in found] == []


class TestRealRepoSaltManifest:
    def test_real_repo_manifest_is_blessed(self):
        found = run_lint(REPO_ROOT, targets=[], select={"R002"})
        assert [v.render() for v in found] == []

    def test_manifest_matches_live_dataclass(self):
        """The manifest agrees with the *imported* StorageConfig too (the
        AST view and the runtime view cannot drift apart)."""
        import dataclasses

        from repro.system.config import StorageConfig

        manifest = json.loads(_real(MANIFEST_REL))
        live = [f.name for f in dataclasses.fields(StorageConfig)]
        assert sorted(manifest["fields"]) == sorted(live)

    def test_manifest_pins_current_schema_version(self):
        from repro.experiments import orchestrator

        manifest = json.loads(_real(MANIFEST_REL))
        assert manifest["schema_version"] == orchestrator.RESULT_SCHEMA_VERSION
