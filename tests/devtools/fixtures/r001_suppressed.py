"""R001 fixture: inline suppression silences the finding on that line."""

import numpy as np  # noqa


def legacy_shim(n):
    # Intentional: reproducing the pre-seeding behavior of an old script.
    return np.random.rand(n)  # reprolint: disable=R001
