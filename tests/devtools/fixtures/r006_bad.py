"""R006 fixture: percentile reads off a merged ResponseStats, unguarded."""

from repro.system.metrics import ResponseStats


def epoch_summary(parts):
    merged = ResponseStats.merge(parts)
    return merged.p95  # NaN by contract after a lossy merge


def epoch_percentile(parts):
    merged = ResponseStats.merge(parts)
    return merged.percentile(95.0)
