"""R007 fixture: ad-hoc observability in simulation code."""

import logging
import time

from logging import getLogger


def serve(obs, observer, t):
    # Off-protocol emissions: methods the RunObserver protocol does not
    # define, which the no-op default observer would crash on.
    obs.on_weird_event(t, "spindown")
    observer.on_custom_counter("spinups", 1)
    # Ad-hoc console output instead of observer emission.
    print("disk 3 spun down at", t)
    # Wall-clock timestamps on observer events (control/cache trees sit
    # outside R004's scope; R007 extends the ban there).
    obs.on_state_span(0, "idle", time.time(), time.perf_counter())
