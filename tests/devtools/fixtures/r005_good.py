"""R005 fixture: disciplined chunked/dense handling."""


def engine(stream):
    if hasattr(stream, "iter_chunks"):
        total = 0.0
        for chunk in stream.iter_chunks():
            total += float(chunk.times.sum())  # chunk arrays are dense
        return total
    return float(stream.times.sum())  # dense branch may use .times


def dense_guard(stream):
    if hasattr(stream, "times"):
        return stream.times  # guarded dense read


def rebound(stream):
    view = stream.chunks(1024)
    view = materialize(view)  # rebinding clears the chunked tracking
    return view.times


def materialize(view):
    return view
