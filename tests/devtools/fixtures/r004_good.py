"""R004 fixture: simulated time and benign os/time usage only."""

import os.path
import time


def simulate(env, horizon):
    # env.now is simulated time, not the host clock.
    while env.now < horizon:
        env.step()
    return env.now


def cache_path(base, name):
    # os.path is pure path arithmetic, not an environment read.
    return os.path.join(base, name)


def nap(seconds):
    # Sleeping (in a benchmark harness) is not *reading* the clock.
    time.sleep(seconds)
