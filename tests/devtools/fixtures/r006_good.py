"""R006 fixture: guarded merged-percentile reads and non-stats merges."""

import math

from repro.system.metrics import ResponseStats


def epoch_summary(parts):
    merged = ResponseStats.merge(parts)
    if merged.percentiles_lost:
        return math.nan
    return merged.p95


def config_overlay(defaults, override):
    # A generic dict-style merge is not a stats merge; .p95 here is a
    # coincidence of naming and must not trip the rule.
    cfg = defaults.merge(override)
    return cfg.p95
