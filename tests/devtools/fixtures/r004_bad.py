"""R004 fixture: wall-clock and environment reads in simulation code."""

import os
import time
from datetime import datetime
from time import perf_counter


def stamp():
    a = time.time()
    b = time.monotonic()
    c = datetime.now()
    d = datetime.utcnow()
    e = os.environ.get("REPRO_KNOB")
    f = os.getenv("REPRO_OTHER")
    g = perf_counter()
    return a, b, c, d, e, f, g
