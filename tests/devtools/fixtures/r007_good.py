"""R007 fixture: protocol-conformant observer usage in simulation code."""


def serve(obs, observer, env, handler):
    # Protocol emissions with simulated timestamps are the sanctioned
    # channel.
    obs.on_state_span(0, "idle", 0.0, env.now)
    obs.on_cache_event(env.now, "hit", 3)
    observer.on_thresholds(env.now, (15.0, 30.0))
    observer.on_placement(env.now, 7, 1)
    # on_* calls on non-observer receivers are someone else's protocol.
    handler.on_message("spindown")
