"""R001 fixture: the sanctioned seeded-stream API only."""

import numpy as np


def draw(n, seed):
    rng = np.random.default_rng(np.random.SeedSequence(seed))
    child = np.random.Generator(np.random.PCG64(seed))
    return rng.normal(size=n) + child.normal(size=n)
