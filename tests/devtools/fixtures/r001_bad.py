"""R001 fixture: every form of global-state RNG the rule must catch."""

import random
import numpy as np
import numpy.random as npr
from random import choice


def draw(n):
    a = np.random.rand(n)          # numpy global state
    np.random.seed(42)             # global reseed
    npr.shuffle(a)                 # aliased numpy.random module
    b = random.random()            # stdlib global RNG
    c = choice([1, 2, 3])          # from-imported stdlib RNG
    state = np.random              # the module object itself
    return a, b, c, state
