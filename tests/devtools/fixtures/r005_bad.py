"""R005 fixture: dense-array reads on values known to be chunked."""


def engine(stream):
    if hasattr(stream, "iter_chunks"):
        return stream.times  # chunked branch reaches for the dense array


def engine_inverted(stream):
    if not hasattr(stream, "times"):
        return stream.file_ids  # the not-dense branch is the chunked one


def from_chunks_call(stream):
    view = stream.chunks(1024)
    total = 0
    for chunk in view.iter_chunks():
        total += len(chunk)
    return view.times  # view was created chunked two statements up
