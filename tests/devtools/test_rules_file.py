"""Good/bad fixture pairs for the file-scoped rules (R001/R004-R007).

Each bad fixture must make its rule fire (the acceptance criterion: every
rule has at least one failing fixture proving it catches its bug class);
each good fixture must stay silent under the *full* default rule set, so
the rules do not flag idiomatic code.
"""

from __future__ import annotations

import pytest

from lintutils import rule_ids, run_lint

#: (bad fixture, destination inside the sandbox, rule, minimum findings)
BAD_CASES = [
    ("r001_bad.py", "src/repro/workload/mod.py", "R001", 6),
    ("r004_bad.py", "src/repro/sim/mod.py", "R004", 7),
    ("r005_bad.py", "src/repro/sim/mod.py", "R005", 3),
    ("r006_bad.py", "src/repro/experiments/mod.py", "R006", 2),
    ("r007_bad.py", "src/repro/control/mod.py", "R007", 6),
]

GOOD_CASES = [
    ("r001_good.py", "src/repro/workload/mod.py"),
    ("r004_good.py", "src/repro/sim/mod.py"),
    ("r005_good.py", "src/repro/sim/mod.py"),
    ("r006_good.py", "src/repro/experiments/mod.py"),
    ("r007_good.py", "src/repro/cache/mod.py"),
]


@pytest.mark.parametrize("fixture, dest, rule, min_findings", BAD_CASES)
def test_bad_fixture_fires(sandbox, fixture, dest, rule, min_findings):
    root = sandbox((fixture, dest))
    found = run_lint(root, select={rule})
    assert len(found) >= min_findings, [v.render() for v in found]
    assert set(rule_ids(found)) == {rule}
    # Line numbers are 1-based and point into the fixture.
    n_lines = (root / dest).read_text().count("\n") + 1
    assert all(1 <= v.line <= n_lines for v in found)


@pytest.mark.parametrize("fixture, dest", GOOD_CASES)
def test_good_fixture_is_silent(sandbox, fixture, dest):
    root = sandbox((fixture, dest))
    assert [v.render() for v in run_lint(root)] == []


class TestScoping:
    def test_r001_exempts_the_rng_wrapper(self, sandbox):
        # repro.sim.rng is the sanctioned wrapper: the same constructs
        # that fire elsewhere are allowed there.
        root = sandbox(("r001_bad.py", "src/repro/sim/rng.py"))
        assert run_lint(root, select={"R001"}) == []

    def test_r004_only_watches_simulation_trees(self, sandbox):
        # Benchmarks and experiments *should* time things.
        root = sandbox(("r004_bad.py", "src/repro/experiments/mod.py"))
        assert run_lint(root, select={"R004"}) == []

    def test_r005_only_watches_engine_code(self, sandbox):
        root = sandbox(("r005_bad.py", "src/repro/workload/mod.py"))
        assert run_lint(root, select={"R005"}) == []

    def test_r006_exempts_the_metrics_module(self, sandbox):
        # metrics.py itself implements merge(); it must be free to touch
        # its own fields.
        root = sandbox(("r006_bad.py", "src/repro/system/metrics.py"))
        assert run_lint(root, select={"R006"}) == []

    def test_r007_only_watches_simulation_trees(self, sandbox):
        # The orchestrator/CLI layer prints, logs and reads the clock on
        # purpose.
        root = sandbox(("r007_bad.py", "src/repro/experiments/mod.py"))
        assert run_lint(root, select={"R007"}) == []


class TestR001Details:
    def test_seeded_constructor_api_is_allowed(self, sandbox):
        src = (
            "import numpy as np\n"
            "rng = np.random.default_rng(7)\n"
            "seq = np.random.SeedSequence(7)\n"
            "gen = np.random.Generator(np.random.PCG64DXSM(seq))\n"
        )
        root = sandbox((None, "src/repro/workload/mod.py", src))
        assert run_lint(root, select={"R001"}) == []

    def test_aliased_numpy_import_is_caught(self, sandbox):
        src = "import numpy\nx = numpy.random.rand(3)\n"
        root = sandbox((None, "src/repro/workload/mod.py", src))
        assert rule_ids(run_lint(root, select={"R001"})) == ["R001"]


class TestR004Details:
    def test_aliased_time_import_is_caught(self, sandbox):
        src = "import time as t\nnow = t.time()\n"
        root = sandbox((None, "src/repro/sim/mod.py", src))
        assert rule_ids(run_lint(root, select={"R004"})) == ["R004"]

    def test_datetime_class_now_is_caught(self, sandbox):
        src = "import datetime\nnow = datetime.datetime.now()\n"
        root = sandbox((None, "src/repro/disk/mod.py", src))
        assert rule_ids(run_lint(root, select={"R004"})) == ["R004"]


class TestR007Details:
    def test_protocol_vocabulary_tracks_the_hooks_class(self):
        from repro.devtools.rules import ObserverProtocolDiscipline
        from repro.obs.hooks import RunObserver

        protocol = {
            attr for attr in dir(RunObserver) if attr.startswith("on_")
        }
        assert ObserverProtocolDiscipline.PROTOCOL == protocol
        assert "on_state_span" in protocol  # sanity: not empty

    def test_self_observer_attribute_is_checked(self, sandbox):
        src = (
            "class Loop:\n"
            "    def fire(self, t):\n"
            "        self.observer.on_novel_thing(t)\n"
        )
        root = sandbox((None, "src/repro/control/mod.py", src))
        assert rule_ids(run_lint(root, select={"R007"})) == ["R007"]

    def test_protocol_emission_on_self_observer_is_allowed(self, sandbox):
        src = (
            "class Loop:\n"
            "    def fire(self, t, th):\n"
            "        self.observer.on_thresholds(t, th)\n"
        )
        root = sandbox((None, "src/repro/control/mod.py", src))
        assert run_lint(root, select={"R007"}) == []

    def test_wallclock_in_cache_tree_is_caught(self, sandbox):
        src = "import time\nstamp = time.time()\n"
        root = sandbox((None, "src/repro/cache/mod.py", src))
        assert rule_ids(run_lint(root, select={"R007"})) == ["R007"]

    def test_sim_tree_wallclock_left_to_r004(self, sandbox):
        # Inside R004's scope the time check stays R004's: one finding
        # per rule, not double-reported.
        src = "import time\nstamp = time.time()\n"
        root = sandbox((None, "src/repro/sim/mod.py", src))
        assert run_lint(root, select={"R007"}) == []
        assert rule_ids(run_lint(root, select={"R004"})) == ["R004"]
