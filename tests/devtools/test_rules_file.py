"""Good/bad fixture pairs for the file-scoped rules (R001/R004/R005/R006).

Each bad fixture must make its rule fire (the acceptance criterion: every
rule has at least one failing fixture proving it catches its bug class);
each good fixture must stay silent under the *full* default rule set, so
the rules do not flag idiomatic code.
"""

from __future__ import annotations

import pytest

from lintutils import rule_ids, run_lint

#: (bad fixture, destination inside the sandbox, rule, minimum findings)
BAD_CASES = [
    ("r001_bad.py", "src/repro/workload/mod.py", "R001", 6),
    ("r004_bad.py", "src/repro/sim/mod.py", "R004", 7),
    ("r005_bad.py", "src/repro/sim/mod.py", "R005", 3),
    ("r006_bad.py", "src/repro/experiments/mod.py", "R006", 2),
]

GOOD_CASES = [
    ("r001_good.py", "src/repro/workload/mod.py"),
    ("r004_good.py", "src/repro/sim/mod.py"),
    ("r005_good.py", "src/repro/sim/mod.py"),
    ("r006_good.py", "src/repro/experiments/mod.py"),
]


@pytest.mark.parametrize("fixture, dest, rule, min_findings", BAD_CASES)
def test_bad_fixture_fires(sandbox, fixture, dest, rule, min_findings):
    root = sandbox((fixture, dest))
    found = run_lint(root, select={rule})
    assert len(found) >= min_findings, [v.render() for v in found]
    assert set(rule_ids(found)) == {rule}
    # Line numbers are 1-based and point into the fixture.
    n_lines = (root / dest).read_text().count("\n") + 1
    assert all(1 <= v.line <= n_lines for v in found)


@pytest.mark.parametrize("fixture, dest", GOOD_CASES)
def test_good_fixture_is_silent(sandbox, fixture, dest):
    root = sandbox((fixture, dest))
    assert [v.render() for v in run_lint(root)] == []


class TestScoping:
    def test_r001_exempts_the_rng_wrapper(self, sandbox):
        # repro.sim.rng is the sanctioned wrapper: the same constructs
        # that fire elsewhere are allowed there.
        root = sandbox(("r001_bad.py", "src/repro/sim/rng.py"))
        assert run_lint(root, select={"R001"}) == []

    def test_r004_only_watches_simulation_trees(self, sandbox):
        # Benchmarks and experiments *should* time things.
        root = sandbox(("r004_bad.py", "src/repro/experiments/mod.py"))
        assert run_lint(root, select={"R004"}) == []

    def test_r005_only_watches_engine_code(self, sandbox):
        root = sandbox(("r005_bad.py", "src/repro/workload/mod.py"))
        assert run_lint(root, select={"R005"}) == []

    def test_r006_exempts_the_metrics_module(self, sandbox):
        # metrics.py itself implements merge(); it must be free to touch
        # its own fields.
        root = sandbox(("r006_bad.py", "src/repro/system/metrics.py"))
        assert run_lint(root, select={"R006"}) == []


class TestR001Details:
    def test_seeded_constructor_api_is_allowed(self, sandbox):
        src = (
            "import numpy as np\n"
            "rng = np.random.default_rng(7)\n"
            "seq = np.random.SeedSequence(7)\n"
            "gen = np.random.Generator(np.random.PCG64DXSM(seq))\n"
        )
        root = sandbox((None, "src/repro/workload/mod.py", src))
        assert run_lint(root, select={"R001"}) == []

    def test_aliased_numpy_import_is_caught(self, sandbox):
        src = "import numpy\nx = numpy.random.rand(3)\n"
        root = sandbox((None, "src/repro/workload/mod.py", src))
        assert rule_ids(run_lint(root, select={"R001"})) == ["R001"]


class TestR004Details:
    def test_aliased_time_import_is_caught(self, sandbox):
        src = "import time as t\nnow = t.time()\n"
        root = sandbox((None, "src/repro/sim/mod.py", src))
        assert rule_ids(run_lint(root, select={"R004"})) == ["R004"]

    def test_datetime_class_now_is_caught(self, sandbox):
        src = "import datetime\nnow = datetime.datetime.now()\n"
        root = sandbox((None, "src/repro/disk/mod.py", src))
        assert rule_ids(run_lint(root, select={"R004"})) == ["R004"]
