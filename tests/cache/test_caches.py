"""Unit and property tests for every cache policy."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cache import (
    BaseCache,
    ClockCache,
    FIFOCache,
    LFUCache,
    LRUCache,
    make_cache,
)
from repro.errors import ConfigError

ALL_POLICIES = ["lru", "lfu", "fifo", "clock"]


class TestFactory:
    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_make_cache(self, policy):
        cache = make_cache(policy, 100.0)
        assert isinstance(cache, BaseCache)
        assert cache.policy_name == policy

    def test_unknown_policy(self):
        with pytest.raises(ConfigError):
            make_cache("magic", 100.0)

    def test_invalid_capacity(self):
        with pytest.raises(ConfigError):
            LRUCache(0.0)


class TestCommonBehaviour:
    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_miss_then_hit(self, policy):
        cache = make_cache(policy, 100.0)
        assert not cache.lookup(1, 10.0)
        cache.admit(1, 10.0)
        assert cache.lookup(1, 10.0)
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_ratio == 0.5

    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_oversized_file_rejected(self, policy):
        cache = make_cache(policy, 100.0)
        assert not cache.admit(1, 150.0)
        assert cache.stats.rejected == 1
        assert 1 not in cache

    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_eviction_keeps_capacity(self, policy):
        cache = make_cache(policy, 100.0)
        for i in range(20):
            cache.admit(i, 30.0)
            assert cache.used <= 100.0
        assert cache.stats.evictions > 0

    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_readmission_refreshes_not_duplicates(self, policy):
        cache = make_cache(policy, 100.0)
        cache.admit(1, 40.0)
        cache.admit(1, 40.0)
        assert cache.used == 40.0
        assert len(cache) == 1

    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_byte_hit_ratio(self, policy):
        cache = make_cache(policy, 100.0)
        cache.lookup(1, 60.0)  # miss
        cache.admit(1, 60.0)
        cache.lookup(1, 60.0)  # hit
        assert cache.stats.byte_hit_ratio == pytest.approx(0.5)

    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_negative_size_rejected(self, policy):
        cache = make_cache(policy, 100.0)
        with pytest.raises(ConfigError):
            cache.admit(1, -5.0)

    def test_hit_ratio_nan_before_lookups(self):
        cache = LRUCache(10.0)
        assert math.isnan(cache.stats.hit_ratio)
        assert math.isnan(cache.stats.byte_hit_ratio)


class TestLRU:
    def test_evicts_least_recent(self):
        cache = LRUCache(100.0)
        cache.admit(1, 40.0)
        cache.admit(2, 40.0)
        cache.lookup(1, 40.0)  # refresh 1
        cache.admit(3, 40.0)  # evicts 2
        assert 1 in cache and 3 in cache and 2 not in cache

    def test_recency_order(self):
        cache = LRUCache(1_000.0)
        for i in range(3):
            cache.admit(i, 10.0)
        cache.lookup(0, 10.0)
        assert cache.recency_order() == [1, 2, 0]


class TestLFU:
    def test_evicts_least_frequent(self):
        cache = LFUCache(100.0)
        cache.admit(1, 40.0)
        cache.admit(2, 40.0)
        for _ in range(5):
            cache.lookup(1, 40.0)
        cache.admit(3, 40.0)  # evicts 2 (freq 1 vs 6)
        assert 1 in cache and 2 not in cache

    def test_frequency_tracking(self):
        cache = LFUCache(100.0)
        cache.admit(1, 10.0)
        cache.lookup(1, 10.0)
        cache.lookup(1, 10.0)
        assert cache.frequency(1) == 3

    def test_tie_broken_by_insertion(self):
        cache = LFUCache(100.0)
        cache.admit(1, 50.0)
        cache.admit(2, 50.0)
        cache.admit(3, 50.0)  # both freq 1; evicts 1 then 2 as needed
        assert 1 not in cache or 2 not in cache
        assert 3 in cache


class TestFIFO:
    def test_evicts_oldest_regardless_of_hits(self):
        cache = FIFOCache(100.0)
        cache.admit(1, 40.0)
        cache.admit(2, 40.0)
        for _ in range(10):
            cache.lookup(1, 40.0)  # hits don't save it
        cache.admit(3, 40.0)
        assert 1 not in cache
        assert 2 in cache and 3 in cache


class TestClock:
    def test_second_chance(self):
        cache = ClockCache(100.0)
        cache.admit(1, 40.0)
        cache.admit(2, 40.0)
        cache.lookup(1, 40.0)  # sets ref bit on 1
        cache.admit(3, 40.0)  # hand skips 1 (clears bit), evicts 2
        assert 1 in cache and 2 not in cache and 3 in cache

    def test_unreferenced_evicted_in_order(self):
        cache = ClockCache(100.0)
        cache.admit(1, 50.0)
        cache.admit(2, 50.0)
        cache.admit(3, 50.0)  # no hits anywhere: evicts 1
        assert 1 not in cache and 2 in cache and 3 in cache


class TestInvariantProperty:
    @pytest.mark.parametrize("policy", ALL_POLICIES)
    @given(
        ops=st.lists(
            st.tuples(st.integers(0, 20), st.floats(1.0, 60.0)),
            max_size=200,
        )
    )
    def test_used_bytes_consistent(self, policy, ops):
        cache = make_cache(policy, 100.0)
        sizes = {}
        for file_id, size in ops:
            size = sizes.setdefault(file_id, size)  # stable per file
            if not cache.lookup(file_id, size):
                cache.admit(file_id, size)
            assert cache.used <= 100.0 + 1e-9
            assert cache.used == pytest.approx(
                sum(sizes[f] for f in sizes if f in cache)
            )
            assert len(cache) == sum(1 for f in sizes if f in cache)


class TestAdmitTermination:
    """Regression: float-accumulated `used` must never strand the eviction
    loop on an empty cache (or let `used` exceed `capacity`)."""

    # Inserting these then evicting all of them in insertion order leaves
    # `used` at +1.87e-16 (float addition does not commute with the
    # subtraction order), which is large enough that `used + 1.0 > 1.0`
    # still holds on the emptied cache.
    RESIDUE_SIZES = (0.105, 0.113, 0.025, 0.176, 0.059, 0.062, 0.048, 0.044, 0.052)

    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_full_flush_with_float_residue(self, policy):
        # Admitting a capacity-sized file must evict *everything* and still
        # terminate — the unguarded eviction loop used to keep calling
        # `_victim()` on the emptied cache and crash on the residue.
        cache = make_cache(policy, 1.0)
        for i, size in enumerate(self.RESIDUE_SIZES):
            cache.admit(i, size)
        assert cache.admit(100, 1.0) is True
        assert 100 in cache
        assert len(cache) == 1
        assert cache.used <= cache.capacity

    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_used_resets_exactly_at_empty(self, policy):
        cache = make_cache(policy, 1.0)
        for i in range(7):
            cache.admit(i, 1.0 / 7.0)
        # Evict everything through capacity pressure.
        cache.admit(99, 1.0)
        cache._evict(99)
        assert len(cache) == 0
        assert cache.used == 0.0

    @pytest.mark.parametrize("policy", ALL_POLICIES)
    @given(
        ops=st.lists(
            st.tuples(st.integers(0, 30), st.sampled_from([0.1, 0.2, 0.3, 1.0])),
            max_size=300,
        )
    )
    def test_capacity_invariant_under_float_sizes(self, policy, ops):
        cache = make_cache(policy, 1.0)
        for file_id, size in ops:
            if not cache.lookup(file_id, size):
                cache.admit(file_id, size)
            assert cache.used <= cache.capacity + 1e-12
            if len(cache) == 0:
                assert cache.used == 0.0
