"""Run the doctests embedded in user-facing docstrings."""

import doctest

import pytest

import repro.reporting.table
import repro.sim
import repro.sim.monitor
import repro.sim.rng
import repro.units

MODULES = [
    repro.units,
    repro.reporting.table,
    repro.sim,
    repro.sim.monitor,
    repro.sim.rng,
]


@pytest.mark.parametrize(
    "module", MODULES, ids=[m.__name__ for m in MODULES]
)
def test_module_doctests(module):
    result = doctest.testmod(module, verbose=False)
    assert result.failed == 0, f"{result.failed} doctest failures in {module.__name__}"
    assert result.attempted > 0, f"no doctests collected from {module.__name__}"
