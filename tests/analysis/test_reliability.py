"""Tests for the spin-cycle reliability projection."""

import math

import numpy as np
import pytest

from repro.analysis import spin_cycle_stress
from repro.disk import DiskState
from repro.errors import ConfigError
from repro.system import SimulationResult
from repro.units import DAY


def make_result(spinups=100, num_disks=10, days=10.0, per_disk=None):
    return SimulationResult(
        algorithm="t",
        duration=days * DAY,
        num_disks=num_disks,
        energy=1.0,
        energy_per_disk=np.ones(num_disks),
        state_durations={DiskState.IDLE: days * DAY * num_disks},
        response_times=np.array([1.0]),
        arrivals=1,
        completions=1,
        spinups=spinups,
        spindowns=spinups,
        always_on_energy=1.0,
        spinups_per_disk=per_disk,
    )


class TestStress:
    def test_mean_rate(self):
        stress = spin_cycle_stress(make_result(spinups=100, num_disks=10, days=10))
        assert stress.cycles_per_disk_day == pytest.approx(1.0)
        assert stress.years_to_rated_mean == pytest.approx(
            50_000 / 1.0 / 365.25
        )

    def test_worst_disk(self):
        per_disk = np.array([90, 10] + [0] * 8)
        stress = spin_cycle_stress(
            make_result(spinups=100, num_disks=10, days=10),
            spinups_per_disk=per_disk,
        )
        assert stress.worst_disk_cycles_per_day == pytest.approx(9.0)
        assert stress.years_to_rated_worst < stress.years_to_rated_mean

    def test_no_spinups_infinite_life(self):
        stress = spin_cycle_stress(make_result(spinups=0))
        assert math.isinf(stress.years_to_rated_mean)
        assert stress.acceptable()

    def test_acceptable_threshold(self):
        # 100 cycles/day exhausts 50k cycles in ~1.4 years.
        stress = spin_cycle_stress(
            make_result(spinups=10_000, num_disks=10, days=10)
        )
        assert not stress.acceptable(min_years=5.0)

    def test_validation(self):
        with pytest.raises(ConfigError):
            spin_cycle_stress(make_result(), rated_cycles=0)

    def test_from_simulation(self):
        # End-to-end: the fields flow from an actual simulation result.
        from repro.system import StorageConfig, run_policy
        from repro.workload import SyntheticWorkloadParams, generate_workload

        wl = generate_workload(
            SyntheticWorkloadParams(
                n_files=1_000, arrival_rate=1.0, duration=600.0, seed=13
            )
        )
        cfg = StorageConfig(num_disks=30, load_constraint=0.8,
                            idleness_threshold=30.0)
        res = run_policy(wl.catalog, wl.stream, "pack", cfg, arrival_rate=1.0)
        stress = spin_cycle_stress(res, spinups_per_disk=res.spinups_per_disk)
        assert stress.cycles_per_disk_day >= 0
        assert stress.worst_disk_cycles_per_day >= stress.cycles_per_disk_day
