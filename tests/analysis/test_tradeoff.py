"""Tests for the analytic trade-off curve (Figure 4's closed form)."""

import pytest

from repro.analysis import tradeoff_curve
from repro.system import StorageConfig
from repro.workload import FileCatalog


@pytest.fixture(scope="module")
def catalog():
    return FileCatalog.from_zipf(n=3_000, s_max=4e9)


class TestTradeoffCurve:
    def test_disks_decrease_with_l(self, catalog):
        points = tradeoff_curve(
            catalog, arrival_rate=2.0, config=StorageConfig(num_disks=1),
            load_grid=[0.4, 0.6, 0.8],
        )
        disks = [p.num_disks for p in points]
        assert disks == sorted(disks, reverse=True)

    def test_response_increases_with_l(self, catalog):
        points = tradeoff_curve(
            catalog, arrival_rate=2.0, config=StorageConfig(num_disks=1),
            load_grid=[0.4, 0.8],
        )
        assert points[0].response_seconds <= points[1].response_seconds

    def test_power_decreases_with_l_with_fixed_pool(self, catalog):
        # With the full 100-disk pool, higher L concentrates load on fewer
        # spinning disks: total power falls (Figure 4's left axis).
        points = tradeoff_curve(
            catalog, arrival_rate=2.0, config=StorageConfig(num_disks=100),
            load_grid=[0.4, 0.8],
        )
        assert points[1].power_watts <= points[0].power_watts

    def test_point_fields(self, catalog):
        (point,) = tradeoff_curve(
            catalog, arrival_rate=1.0, load_grid=[0.5],
        )
        assert point.load_constraint == 0.5
        assert point.num_disks > 0
        assert point.power_watts > 0
        assert point.response_seconds > 0
