"""Tests for the threshold-policy power model, including Monte Carlo and
simulator cross-validation."""

import math

import numpy as np
import pytest

from repro.analysis import disk_power_estimate
from repro.analysis.powermodel import analyze_idle_period
from repro.core import pack_disks
from repro.disk import DiskDrive, ST3500630AS
from repro.errors import ConfigError
from repro.sim import Environment
from repro.units import MB

SPEC = ST3500630AS


class TestIdlePeriodClosedForms:
    def test_against_monte_carlo(self, rng):
        lam, tau = 0.01, 53.3
        analysis = analyze_idle_period(lam, tau, SPEC)
        x = rng.exponential(1 / lam, size=200_000)
        p_down = float(np.mean(x > tau))
        assert analysis.spin_down_probability == pytest.approx(p_down, rel=0.02)

        idle_e = SPEC.idle_power * np.minimum(x, tau)
        down = x > tau
        trans_e = down * (SPEC.spindown_energy + SPEC.spinup_energy)
        standby_e = SPEC.standby_power * np.maximum(
            x - tau - SPEC.spindown_time, 0.0
        )
        mc_energy = float(np.mean(idle_e + trans_e + standby_e))
        assert analysis.idle_period_energy == pytest.approx(mc_energy, rel=0.02)

        # Penalty: remaining spin-down + full spin-up when spun down.
        remaining = np.where(
            down,
            np.maximum(tau + SPEC.spindown_time - x, 0.0) + SPEC.spinup_time,
            0.0,
        )
        assert analysis.spin_penalty_wait == pytest.approx(
            float(np.mean(remaining)), rel=0.02
        )

    def test_infinite_threshold(self):
        analysis = analyze_idle_period(0.01, math.inf, SPEC)
        assert analysis.spin_down_probability == 0.0
        assert analysis.spin_penalty_wait == 0.0
        assert analysis.idle_period_energy == pytest.approx(SPEC.idle_power / 0.01)

    def test_zero_threshold(self):
        analysis = analyze_idle_period(0.01, 0.0, SPEC)
        assert analysis.spin_down_probability == 1.0

    def test_invalid_args(self):
        with pytest.raises(ConfigError):
            analyze_idle_period(0.0, 10.0, SPEC)
        with pytest.raises(ConfigError):
            analyze_idle_period(1.0, -1.0, SPEC)


class TestDiskPowerEstimate:
    def test_zero_rate_disk_sleeps(self):
        assert disk_power_estimate(0.0, 0.0, 100.0, SPEC) == SPEC.standby_power

    def test_zero_rate_no_spindown_idles(self):
        assert disk_power_estimate(0.0, 0.0, math.inf, SPEC) == SPEC.idle_power

    def test_saturated_disk_at_active_power(self):
        assert disk_power_estimate(1.0, 2.0, 100.0, SPEC) == SPEC.active_power

    def test_monotone_in_rate_for_sleepy_disks(self):
        # More traffic on a mostly-sleeping disk means more power.
        powers = [
            disk_power_estimate(lam, 1.0, SPEC.breakeven_threshold(), SPEC)
            for lam in (1e-5, 1e-4, 1e-3)
        ]
        assert powers[0] < powers[1] < powers[2]

    def test_never_spin_down_bounds(self):
        p = disk_power_estimate(0.001, 1.0, math.inf, SPEC)
        assert SPEC.idle_power < p < SPEC.active_power

    def test_cross_validation_against_simulator(self):
        # One disk, Poisson arrivals, break-even threshold: the renewal
        # analysis should land within ~10% of the simulated mean power.
        lam = 0.005
        size = 72 * MB  # 1 s service
        threshold = SPEC.breakeven_threshold()
        env = Environment()
        drive = DiskDrive(env, SPEC, idleness_threshold=threshold)
        rng = np.random.default_rng(8)
        times = np.cumsum(rng.exponential(1 / lam, size=2_000))

        def feeder(env):
            for t in times:
                yield env.timeout(t - env.now)
                drive.submit(0, size)

        env.process(feeder(env))
        env.run(until=float(times[-1]))
        simulated = drive.mean_power()
        es = drive.spec.access_overhead + 1.0
        estimated = disk_power_estimate(lam, es, threshold, SPEC)
        assert estimated == pytest.approx(simulated, rel=0.10)

    def test_invalid_args(self):
        with pytest.raises(ConfigError):
            disk_power_estimate(-1.0, 1.0, 10.0, SPEC)


class TestAllocationPowerEstimate:
    def test_idle_pool_counts_standby(self, small_catalog):
        from repro.analysis import allocation_power_estimate
        from repro.disk import ServiceModel
        from repro.system import StorageConfig, build_items

        cfg = StorageConfig(num_disks=50, load_constraint=0.8)
        items = build_items(small_catalog, cfg, 0.1)
        alloc = pack_disks(items)
        service = ServiceModel(SPEC)
        with_pool = allocation_power_estimate(
            small_catalog, alloc, 0.1, service, 100.0, SPEC, num_disks=50
        )
        bare = allocation_power_estimate(
            small_catalog, alloc, 0.1, service, 100.0, SPEC
        )
        extra = (50 - alloc.num_disks) * SPEC.standby_power
        assert with_pool == pytest.approx(bare + extra)

    def test_pool_smaller_than_allocation_rejected(self, small_catalog):
        from repro.analysis import allocation_power_estimate
        from repro.disk import ServiceModel
        from repro.system import StorageConfig, build_items

        cfg = StorageConfig(load_constraint=0.8)
        items = build_items(small_catalog, cfg, 0.1)
        alloc = pack_disks(items)
        with pytest.raises(ConfigError):
            allocation_power_estimate(
                small_catalog, alloc, 0.1, ServiceModel(SPEC), 100.0, SPEC,
                num_disks=0,
            )
