"""Tests for the multi-state DPM policy (paper §2's framework)."""


import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.dpm import (
    DpmState,
    MultiStateDpmPolicy,
    offline_optimal_gap_energy,
    states_from_spec,
)
from repro.disk import ST3500630AS
from repro.errors import ConfigError

SPEC = ST3500630AS

TWO_STATE = [
    DpmState("idle", 9.3, 0.0, 0.0),
    DpmState("standby", 0.8, 453.0, 15.0),
]
THREE_STATE = [
    DpmState("idle", 9.3, 0.0, 0.0),
    DpmState("nap", 4.0, 60.0, 2.0),
    DpmState("standby", 0.8, 453.0, 15.0),
]


class TestLadderValidation:
    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            MultiStateDpmPolicy([])

    def test_first_state_needs_zero_wake(self):
        with pytest.raises(ConfigError):
            MultiStateDpmPolicy([DpmState("idle", 9.3, 1.0)])

    def test_power_must_decrease(self):
        with pytest.raises(ConfigError):
            MultiStateDpmPolicy(
                [DpmState("a", 5.0, 0.0), DpmState("b", 6.0, 10.0)]
            )

    def test_wake_energy_must_increase(self):
        with pytest.raises(ConfigError):
            MultiStateDpmPolicy(
                [
                    DpmState("a", 5.0, 0.0),
                    DpmState("b", 4.0, 10.0),
                    DpmState("c", 3.0, 5.0),
                ]
            )

    def test_negative_figures_rejected(self):
        with pytest.raises(ConfigError):
            DpmState("x", -1.0, 0.0)


class TestTwoStateReduction:
    def test_threshold_is_breakeven(self):
        policy = MultiStateDpmPolicy.two_state(SPEC)
        (threshold,) = policy.thresholds()
        assert threshold == pytest.approx(SPEC.breakeven_threshold())
        assert threshold == pytest.approx(53.3, abs=0.05)

    def test_states_from_spec(self):
        idle, standby = states_from_spec(SPEC)
        assert idle.power == 9.3 and idle.wake_energy == 0.0
        assert standby.wake_energy == pytest.approx(453.0)
        assert standby.wake_time == 15.0

    def test_gap_energy_short_gap(self):
        policy = MultiStateDpmPolicy(TWO_STATE)
        assert policy.gap_energy(10.0) == pytest.approx(93.0)

    def test_gap_energy_long_gap(self):
        policy = MultiStateDpmPolicy(TWO_STATE)
        tau = policy.thresholds()[0]
        g = 1_000.0
        expected = 9.3 * tau + 0.8 * (g - tau) + 453.0
        assert policy.gap_energy(g) == pytest.approx(expected)


class TestSchedule:
    def test_three_state_thresholds_increase(self):
        policy = MultiStateDpmPolicy(THREE_STATE)
        thresholds = policy.thresholds()
        assert thresholds == sorted(thresholds)
        assert len(thresholds) == 2

    def test_dominated_state_skipped(self):
        # A nap state so expensive it never pays off is dropped from the
        # envelope entirely.
        states = [
            DpmState("idle", 9.3, 0.0),
            DpmState("nap", 9.2, 1_000.0),
            DpmState("standby", 0.8, 1_001.0),
        ]
        policy = MultiStateDpmPolicy(states)
        names = [s.name for _, s in policy.schedule]
        assert "nap" not in names
        assert names == ["idle", "standby"]

    def test_state_at_walks_ladder(self):
        policy = MultiStateDpmPolicy(THREE_STATE)
        t1, t2 = policy.thresholds()
        assert policy.state_at(0.0).name == "idle"
        assert policy.state_at((t1 + t2) / 2).name == "nap"
        assert policy.state_at(t2 + 1).name == "standby"
        with pytest.raises(ConfigError):
            policy.state_at(-1.0)

    def test_wake_penalty(self):
        policy = MultiStateDpmPolicy(THREE_STATE)
        t1, t2 = policy.thresholds()
        assert policy.wake_penalty(0.0) == 0.0
        assert policy.wake_penalty(t2 + 1) == 15.0


class TestCompetitiveness:
    @given(st.lists(st.floats(0.0, 1e5), min_size=1, max_size=40))
    def test_two_state_2_competitive(self, gaps):
        policy = MultiStateDpmPolicy(TWO_STATE)
        online = policy.sequence_energy(gaps)
        offline = sum(
            offline_optimal_gap_energy(TWO_STATE, g) for g in gaps
        )
        assert online <= 2.0 * offline + 1e-6

    @given(st.lists(st.floats(0.0, 1e5), min_size=1, max_size=40))
    def test_three_state_2_competitive(self, gaps):
        policy = MultiStateDpmPolicy(THREE_STATE)
        online = policy.sequence_energy(gaps)
        offline = sum(
            offline_optimal_gap_energy(THREE_STATE, g) for g in gaps
        )
        assert online <= 2.0 * offline + 1e-6

    def test_deeper_ladder_never_hurts_offline(self):
        g = 500.0
        assert offline_optimal_gap_energy(
            THREE_STATE, g
        ) <= offline_optimal_gap_energy(TWO_STATE, g)


class TestExpectedEnergy:
    def test_monte_carlo_agreement(self, rng):
        policy = MultiStateDpmPolicy(THREE_STATE)
        lam = 0.01
        gaps = rng.exponential(1 / lam, size=100_000)
        mc = float(np.mean([policy.gap_energy(g) for g in gaps[:20_000]]))
        closed = policy.expected_gap_energy(lam)
        assert closed == pytest.approx(mc, rel=0.03)

    def test_invalid_rate(self):
        with pytest.raises(ConfigError):
            MultiStateDpmPolicy(TWO_STATE).expected_gap_energy(0.0)

    def test_negative_gap_rejected(self):
        policy = MultiStateDpmPolicy(TWO_STATE)
        with pytest.raises(ConfigError):
            policy.gap_energy(-1.0)
        with pytest.raises(ConfigError):
            offline_optimal_gap_energy(TWO_STATE, -1.0)
