"""Tests for the M/G/1 response-time model, including cross-validation
against the discrete-event simulator."""

import math

import numpy as np
import pytest

from repro.analysis import allocation_response_estimate, mg1_response_time, mg1_waiting_time
from repro.core import pack_disks
from repro.disk import ST3500630AS, ServiceModel
from repro.errors import ConfigError
from repro.system import StorageConfig, build_items, simulate
from repro.units import MB
from repro.workload import FileCatalog, RequestStream


class TestFormulas:
    def test_mm1_special_case(self):
        # For exponential service (E[S^2] = 2 E[S]^2), M/G/1 reduces to
        # M/M/1: W_q = rho/(mu - lambda).
        lam, mu = 0.5, 1.0
        es = 1 / mu
        es2 = 2 / mu**2
        wq = mg1_waiting_time(lam, es, es2)
        rho = lam / mu
        assert wq == pytest.approx(rho / (mu - lam))

    def test_md1_special_case(self):
        # Deterministic service: W_q = rho ES / (2 (1 - rho)).
        lam, es = 0.5, 1.0
        wq = mg1_waiting_time(lam, es, es * es)
        assert wq == pytest.approx(0.5 * 1.0 / (2 * 0.5))

    def test_zero_rate_no_waiting(self):
        assert mg1_waiting_time(0.0, 5.0, 30.0) == 0.0
        assert mg1_response_time(0.0, 5.0, 30.0) == 5.0

    def test_overload_is_infinite(self):
        assert math.isinf(mg1_waiting_time(2.0, 1.0, 2.0))

    def test_negative_args_rejected(self):
        with pytest.raises(ConfigError):
            mg1_waiting_time(-1.0, 1.0, 1.0)


class TestAllocationEstimate:
    def test_single_disk_uniform(self):
        catalog = FileCatalog(
            sizes=np.full(4, 72 * MB), popularities=np.full(4, 0.25)
        )
        items = build_items(catalog, StorageConfig(), arrival_rate=0.2)
        alloc = pack_disks(items)
        service = ServiceModel(ST3500630AS)
        est = allocation_response_estimate(catalog, alloc, 0.2, service)
        es = service.service_time(72 * MB)
        expected = mg1_response_time(0.2, es, es * es)
        assert est == pytest.approx(expected, rel=1e-6)

    def test_overloaded_disk_gives_inf(self):
        catalog = FileCatalog(
            sizes=np.array([720 * MB]), popularities=np.array([1.0])
        )
        items = build_items(catalog, StorageConfig(), arrival_rate=0.01)
        alloc = pack_disks(items)
        service = ServiceModel(ST3500630AS)
        # 1 request/s x 10 s service = overload.
        assert math.isinf(
            allocation_response_estimate(catalog, alloc, 1.0, service)
        )

    def test_cross_validation_against_simulator(self):
        # A moderately loaded array with spin-down disabled: M/G/1 should
        # predict the simulated mean response within ~15%.
        catalog = FileCatalog.from_zipf(n=400, s_max=1e9, s_min=1e8)
        rate = 1.0
        cfg = StorageConfig(
            num_disks=10, load_constraint=0.6, idleness_threshold=math.inf
        )
        items = build_items(catalog, cfg, rate)
        alloc = pack_disks(items)
        stream = RequestStream.poisson(
            catalog.popularities, rate=rate, duration=20_000.0, rng=4
        )
        result = simulate(catalog, stream, alloc, cfg, num_disks=10)
        service = cfg.service_model()
        est = allocation_response_estimate(catalog, alloc, rate, service)
        assert est == pytest.approx(result.mean_response, rel=0.15)
