"""Tests for the disk-farm planning tool."""

import pytest

from repro.analysis import minimum_disks, plan_disk_farm
from repro.errors import CapacityError, ConfigError
from repro.system import StorageConfig
from repro.workload import FileCatalog


@pytest.fixture(scope="module")
def catalog():
    return FileCatalog.from_zipf(n=2_000, s_max=4e9)


class TestMinimumDisks:
    def test_space_bound_dominates_at_low_rate(self, catalog):
        cfg = StorageConfig(load_constraint=0.8)
        low = minimum_disks(catalog, cfg, arrival_rate=0.001)
        import numpy as np

        assert low == int(
            np.ceil(catalog.total_bytes / cfg.usable_capacity)
        )

    def test_load_bound_dominates_at_high_rate(self, catalog):
        cfg = StorageConfig(load_constraint=0.8)
        high = minimum_disks(catalog, cfg, arrival_rate=50.0)
        low = minimum_disks(catalog, cfg, arrival_rate=0.001)
        assert high > low

    def test_monotone_in_rate(self, catalog):
        cfg = StorageConfig(load_constraint=0.5)
        counts = [
            minimum_disks(catalog, cfg, r) for r in (0.1, 1.0, 5.0, 20.0)
        ]
        assert counts == sorted(counts)


class TestPlanning:
    def test_plans_sorted_and_feasible_found(self, catalog):
        plans = plan_disk_farm(
            catalog, arrival_rate=1.0, response_target=60.0,
            config=StorageConfig(),
        )
        disk_counts = [p.num_disks for p in plans]
        assert disk_counts == sorted(disk_counts)
        assert any(p.feasible for p in plans)

    def test_lower_l_gives_more_disks_less_latency(self, catalog):
        plans = plan_disk_farm(
            catalog, arrival_rate=1.0, response_target=1e9,
            config=StorageConfig(), load_grid=[0.8, 0.4],
        )
        by_l = {p.load_constraint: p for p in plans}
        assert by_l[0.4].num_disks >= by_l[0.8].num_disks
        assert by_l[0.4].expected_response <= by_l[0.8].expected_response

    def test_impossible_target_raises(self, catalog):
        with pytest.raises(CapacityError):
            plan_disk_farm(
                catalog, arrival_rate=1.0, response_target=1e-6,
                config=StorageConfig(),
            )

    def test_invalid_target_rejected(self, catalog):
        with pytest.raises(ConfigError):
            plan_disk_farm(catalog, 1.0, response_target=0.0)

    def test_infeasible_load_points_skipped(self, catalog):
        # At a tiny L the hottest file alone exceeds the per-disk load
        # budget; those grid points must be skipped, not crash.
        plans = plan_disk_farm(
            catalog, arrival_rate=6.0, response_target=1e9,
            config=StorageConfig(), load_grid=[0.8, 0.01],
        )
        assert all(p.load_constraint == 0.8 for p in plans)

    def test_plan_string_rendering(self, catalog):
        plans = plan_disk_farm(
            catalog, arrival_rate=0.5, response_target=100.0,
            config=StorageConfig(), load_grid=[0.6],
        )
        text = str(plans[0])
        assert "L=0.60" in text
        assert "disks" in text
