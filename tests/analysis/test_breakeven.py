"""Tests for the break-even analysis and the 2-competitive guarantee."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis import (
    breakeven_threshold,
    offline_optimal_energy,
    threshold_policy_energy,
)
from repro.disk import ST3500630AS
from repro.errors import ConfigError

SPEC = ST3500630AS


class TestBreakeven:
    def test_matches_table2(self):
        assert breakeven_threshold(SPEC) == pytest.approx(53.3, abs=0.05)


class TestGapEnergies:
    def test_short_gap_stays_up(self):
        energy = threshold_policy_energy([10.0], SPEC, threshold=53.3)
        assert energy == pytest.approx(10.0 * SPEC.idle_power)

    def test_long_gap_spins_down(self):
        tau = 53.3
        g = 10_000.0
        energy = threshold_policy_energy([g], SPEC, threshold=tau)
        expected = (
            SPEC.idle_power * tau
            + SPEC.spindown_energy
            + SPEC.standby_power * (g - tau - SPEC.spindown_time)
            + SPEC.spinup_energy
        )
        assert energy == pytest.approx(expected)

    def test_infinite_threshold_never_transitions(self):
        energy = threshold_policy_energy([1e6], SPEC, threshold=math.inf)
        assert energy == pytest.approx(1e6 * SPEC.idle_power)

    def test_offline_picks_cheaper_option(self):
        # Tiny gap: staying up wins.  Huge gap: sleeping wins.
        small = offline_optimal_energy([1.0], SPEC)
        assert small == pytest.approx(SPEC.idle_power * 1.0)
        big = offline_optimal_energy([1e6], SPEC)
        sleep_cost = (
            SPEC.spindown_energy
            + SPEC.standby_power * (1e6 - SPEC.spindown_time)
            + SPEC.spinup_energy
        )
        assert big == pytest.approx(sleep_cost)

    def test_negative_inputs_rejected(self):
        with pytest.raises(ConfigError):
            threshold_policy_energy([-1.0], SPEC, 10.0)
        with pytest.raises(ConfigError):
            threshold_policy_energy([1.0], SPEC, -1.0)
        with pytest.raises(ConfigError):
            offline_optimal_energy([-1.0], SPEC)


class TestCompetitiveRatio:
    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=1e5),
            min_size=1,
            max_size=50,
        )
    )
    def test_breakeven_policy_is_2_competitive(self, gaps):
        # The classic DPM theorem the paper's related work cites: the
        # break-even threshold policy never spends more than twice the
        # clairvoyant optimum on any gap sequence.
        tau = breakeven_threshold(SPEC)
        online = threshold_policy_energy(gaps, SPEC, tau)
        offline = offline_optimal_energy(gaps, SPEC)
        assert online <= 2.0 * offline + 1e-6

    @given(
        st.lists(st.floats(0.0, 1e5), min_size=1, max_size=30),
        st.floats(0.0, 1e4),
    )
    def test_offline_lower_bounds_any_threshold(self, gaps, tau):
        online = threshold_policy_energy(gaps, SPEC, tau)
        offline = offline_optimal_energy(gaps, SPEC)
        assert offline <= online + 1e-6
