"""Shared fixtures and hypothesis configuration for the test suite.

(The sweep-cache isolation fixture lives in the repo-root conftest so the
benchmarks get it too.)
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

# CI boxes vary wildly; deadlines cause flaky failures on shared runners.
settings.register_profile(
    "repro",
    deadline=None,
    max_examples=50,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture
def rng():
    """A deterministic generator for tests that need randomness."""
    return np.random.default_rng(12345)


@pytest.fixture
def env():
    """A fresh simulation environment."""
    from repro.sim import Environment

    return Environment()


@pytest.fixture
def spec():
    """The paper's Table 2 disk."""
    from repro.disk import ST3500630AS

    return ST3500630AS


@pytest.fixture
def small_catalog():
    """A 200-file Zipf catalog, large enough to be non-degenerate."""
    from repro.workload import FileCatalog

    return FileCatalog.from_zipf(n=200, s_max=2e9)
