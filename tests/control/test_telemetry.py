"""Property-style tests for the P² percentile estimator and span binning."""

import math

import numpy as np
import pytest

from repro.control import P2Quantile
from repro.control.telemetry import bin_spans
from repro.errors import ConfigError


def _sample(rng, dist, n):
    if dist == "uniform":
        return rng.uniform(0.0, 100.0, n)
    if dist == "exponential":
        return rng.exponential(10.0, n)
    return rng.lognormal(1.0, 1.0, n)


class TestP2Quantile:
    def test_invalid_percentile_rejected(self):
        for bad in (0.0, 100.0, -5.0, 120.0):
            with pytest.raises(ConfigError):
                P2Quantile(bad)

    def test_empty_is_nan(self):
        assert math.isnan(P2Quantile(95.0).value)

    def test_small_n_is_exact_empirical_percentile(self):
        # Below five observations the estimate is the linear-interpolated
        # empirical percentile, bit-equal to np.percentile.
        xs = [3.0, 1.0, 7.0, 2.0]
        est = P2Quantile(95.0)
        for i, x in enumerate(xs):
            est.add(x)
            assert est.value == float(np.percentile(xs[: i + 1], 95.0))

    @pytest.mark.parametrize("dist", ["uniform", "exponential", "lognormal"])
    @pytest.mark.parametrize("pct", [50.0, 90.0, 95.0, 99.0])
    def test_tracks_numpy_percentile_on_random_streams(self, dist, pct):
        """Property-style: across seeds, the streaming estimate lands close
        to the exact batch percentile.

        Tolerances are ~4x the worst observed error per (distribution,
        percentile) family: a few permil on uniform, up to several percent
        at the heavy lognormal tail — P² is approximate by construction.
        """
        rel_tol = {"uniform": 0.03, "exponential": 0.15, "lognormal": 0.20}[
            dist
        ]
        if dist == "lognormal" and pct == 99.0:
            rel_tol = 0.5  # heavy tail: worst observed ~12%
        for seed in range(8):
            rng = np.random.default_rng(seed)
            xs = _sample(rng, dist, 4_000)
            est = P2Quantile(pct)
            for x in xs:
                est.add(x)
            true = float(np.percentile(xs, pct))
            assert est.value == pytest.approx(true, rel=rel_tol), (
                dist,
                pct,
                seed,
            )

    def test_estimate_stays_bracketed(self):
        rng = np.random.default_rng(7)
        xs = _sample(rng, "lognormal", 1_000)
        est = P2Quantile(95.0)
        for x in xs:
            est.add(x)
            assert xs.min() - 1e-12 <= est.value <= xs.max() + 1e-12

    def test_count_tracks_observations(self):
        est = P2Quantile(95.0)
        for i in range(10):
            est.add(float(i))
        assert est.count == 10

    def test_constant_stream(self):
        est = P2Quantile(95.0)
        for _ in range(100):
            est.add(4.2)
        assert est.value == pytest.approx(4.2)

    def test_deterministic_in_order(self):
        # Two estimators fed the same sequence agree exactly — the
        # property the cross-engine telemetry contract relies on.
        rng = np.random.default_rng(3)
        xs = _sample(rng, "exponential", 500)
        a, b = P2Quantile(95.0), P2Quantile(95.0)
        for x in xs:
            a.add(x)
            b.add(x)
        assert a.value == b.value


class TestBinSpans:
    def test_overlap_splits_across_windows(self):
        # One span [5, 25) on disk 1 over windows [0,10) and [10,30).
        out = bin_spans(
            np.array([1]), np.array([5.0]), np.array([25.0]),
            edges=[0.0, 10.0, 30.0], num_disks=3,
        )
        assert out.shape == (2, 3)
        assert out[0].tolist() == [0.0, 5.0, 0.0]
        assert out[1].tolist() == [0.0, 15.0, 0.0]

    def test_span_covering_interior_windows_fully(self):
        # [5, 37) over [0,10),[10,20),[20,30),[30,40): two partial window
        # contributions plus fully covered interiors via the cumsum path.
        out = bin_spans(
            np.array([0]), np.array([5.0]), np.array([37.0]),
            edges=[0.0, 10.0, 20.0, 30.0, 40.0], num_disks=1,
        )
        assert out[:, 0].tolist() == [5.0, 10.0, 10.0, 7.0]

    def test_matches_bruteforce_on_random_spans(self):
        rng = np.random.default_rng(5)
        edges = np.sort(rng.uniform(0.0, 100.0, 7))
        starts = rng.uniform(-10.0, 110.0, 300)
        ends = starts + rng.uniform(0.0, 60.0, 300)
        disks = rng.integers(0, 3, 300)
        out = bin_spans(disks, starts, ends, edges, 3)
        for k in range(len(edges) - 1):
            for d in range(3):
                mask = disks == d
                expect = np.clip(
                    np.minimum(ends[mask], edges[k + 1])
                    - np.maximum(starts[mask], edges[k]),
                    0.0,
                    None,
                ).sum()
                assert out[k, d] == pytest.approx(expect)

    def test_conserves_total_span_time(self):
        rng = np.random.default_rng(11)
        starts = rng.uniform(0.0, 90.0, 200)
        ends = starts + rng.uniform(0.0, 10.0, 200)
        disks = rng.integers(0, 4, 200)
        edges = np.linspace(0.0, 100.0, 11)
        out = bin_spans(disks, starts, ends, edges, 4)
        assert out.sum() == pytest.approx(
            np.clip(np.minimum(ends, 100.0) - starts, 0.0, None).sum()
        )

    def test_empty_spans(self):
        out = bin_spans(
            np.empty(0, np.int64), np.empty(0), np.empty(0),
            edges=[0.0, 10.0], num_disks=2,
        )
        assert out.shape == (1, 2)
        assert not out.any()
