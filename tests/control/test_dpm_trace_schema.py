"""Schema tests for the per-interval control trace in ``result.extra["dpm"]``.

Every registered dynamic policy (with and without a ladder) must attach a
complete, well-formed trace: aligned list lengths, contiguous monotone
interval edges on the control grid, per-disk threshold rows, a full power
matrix, and completion counts that add up to the run's.  Previously only
spot-checked per policy; this grid pins the schema for all of them.
"""

import math

import numpy as np
import pytest

from repro.control import dpm_policy_names
from repro.system import StorageConfig, StorageSystem, allocate
from repro.workload.generator import SyntheticWorkloadParams, generate_workload

DYNAMIC = tuple(n for n in dpm_policy_names() if n != "fixed")

#: Trace keys that must be one-entry-per-interval lists.
PER_INTERVAL_KEYS = (
    "t_start", "t_end", "thresholds", "completions", "interval_p95",
    "p95_running", "p99_running", "slo_estimate", "mean_queue_depth",
)


@pytest.fixture(scope="module")
def workload():
    return generate_workload(
        SyntheticWorkloadParams(
            n_files=900, arrival_rate=1.0, duration=700.0, seed=31
        )
    )


def _run(workload, policy, ladder, engine):
    kwargs = dict(
        num_disks=25,
        load_constraint=0.6,
        dpm_policy=policy,
        control_interval=130.0,
        dpm_ladder=ladder,
        engine=engine,
    )
    if policy == "slo_feedback":
        kwargs["slo_target"] = 25.0
    cfg = StorageConfig(**kwargs)
    mapping = allocate(workload.catalog, "pack", cfg, 1.0).mapping(
        workload.catalog.n
    )
    system = StorageSystem(workload.catalog, mapping, cfg)
    return system.run(workload.stream), system.num_disks


@pytest.mark.parametrize("ladder", (None, "nap"))
@pytest.mark.parametrize("policy", DYNAMIC)
@pytest.mark.parametrize("engine", ("fast", "event"))
def test_trace_schema(workload, policy, ladder, engine):
    result, num_disks = _run(workload, policy, ladder, engine)
    dpm = result.extra["dpm"]
    assert dpm["policy"] == policy
    interval = dpm["interval"]
    assert interval == 130.0

    n = len(dpm["t_end"])
    assert n >= 2
    for key in PER_INTERVAL_KEYS:
        assert len(dpm[key]) == n, key

    # Interval edges: contiguous, monotone, on the control grid, ending
    # exactly at the horizon.
    t_start, t_end = dpm["t_start"], dpm["t_end"]
    assert t_start[0] == 0.0
    assert t_end[-1] == pytest.approx(result.duration)
    for i in range(n):
        assert t_end[i] > t_start[i]
        if i + 1 < n:
            assert t_start[i + 1] == t_end[i]
            assert t_end[i] == pytest.approx((i + 1) * interval)

    # Threshold rows: one non-negative value per disk, every interval.
    for row in dpm["thresholds"]:
        assert len(row) == num_disks
        assert all(th >= 0 for th in row)

    # Completions observed per interval add up to the run's.
    assert sum(dpm["completions"]) == result.completions

    # Power trace: full (intervals x disks) matrix of finite wattages.
    power = np.asarray(dpm["power"], dtype=float)
    assert power.shape == (n, num_disks)
    assert np.all(np.isfinite(power))
    assert np.all(power >= 0)

    # Percentile estimates: NaN only before any completion, then finite
    # and non-negative.
    seen = 0
    for i, p95 in enumerate(dpm["p95_running"]):
        seen += dpm["completions"][i]
        if seen:
            assert math.isfinite(p95) and p95 >= 0.0
    # The trace's total window-weighted power equals the run's energy.
    windows = np.asarray(t_end) - np.asarray(t_start)
    assert float((power.T * windows).sum()) == pytest.approx(
        result.energy, rel=1e-6
    )


def test_static_policy_attaches_no_trace(workload):
    result, _ = _run(workload, "fixed", None, "fast")
    assert "dpm" not in result.extra
