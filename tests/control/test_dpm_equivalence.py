"""Event/fast agreement for every registered DPM policy, plus the
``fixed`` byte-identity regression.

The control subsystem's core contract: both engines feed the shared
controller identical telemetry and honor its thresholds with identical
gap semantics, so every registered policy — across read-only, mixed
read/write and shared-cache scenarios — produces the same trajectories
up to the kernels' ~1 ulp float drift.  ``dpm_policy="fixed"`` must not
merely agree: it must take the *uncontrolled* code path and reproduce
the pre-control simulator bit for bit.
"""

import numpy as np
import pytest

from repro.control import ThresholdController, dpm_policy_names
from repro.disk.array import DiskArray
from repro.sim.environment import Environment
from repro.sim.fastkernel import simulate_fast
from repro.system import StorageConfig, StorageSystem, allocate
from repro.system.dispatcher import Dispatcher, drive_stream
from repro.units import GiB
from repro.workload.generator import SyntheticWorkloadParams, generate_workload
from repro.workload.mixed import MixedWorkloadParams, generate_mixed_workload

TOL = 1e-9

#: Dynamic policies only — ``fixed`` has its own byte-identity tests.
DYNAMIC = tuple(n for n in dpm_policy_names() if n != "fixed")

#: slo_target used whenever a policy requires one (ignored otherwise).
SLO_TARGET = 30.0


def run_both(catalog, stream, mapping, cfg, num_disks=None):
    event = StorageSystem(
        catalog, mapping, cfg.with_overrides(engine="event"),
        num_disks=num_disks,
    ).run(stream)
    fast = StorageSystem(
        catalog, mapping, cfg.with_overrides(engine="fast"),
        num_disks=num_disks,
    ).run(stream)
    return event, fast


def assert_equivalent(event, fast):
    assert fast.arrivals == event.arrivals
    assert fast.completions == event.completions
    assert fast.spinups == event.spinups
    assert fast.spindowns == event.spindowns
    assert fast.energy == pytest.approx(event.energy, rel=TOL)
    np.testing.assert_allclose(
        fast.energy_per_disk, event.energy_per_disk, rtol=TOL, atol=1e-6
    )
    np.testing.assert_allclose(
        np.sort(fast.response_times),
        np.sort(event.response_times),
        rtol=TOL,
        atol=1e-9,
    )
    for state, t in event.state_durations.items():
        assert fast.state_durations.get(state, 0.0) == pytest.approx(
            t, rel=TOL, abs=1e-6
        )
    if event.cache_stats is not None:
        assert fast.cache_stats.hits == event.cache_stats.hits
        assert fast.cache_stats.misses == event.cache_stats.misses
    # The control traces: identical threshold decisions, matching
    # percentile estimates, and power traces agreeing to accumulation
    # noise (the event engine integrates energies online, the fast
    # kernel bins logged spans).
    dpm_e, dpm_f = event.extra["dpm"], fast.extra["dpm"]
    assert dpm_f["thresholds"] == dpm_e["thresholds"]
    assert dpm_f["t_end"] == dpm_e["t_end"]
    np.testing.assert_allclose(
        dpm_f["p95_running"], dpm_e["p95_running"], rtol=1e-6
    )
    assert dpm_f["completions"] == dpm_e["completions"]
    assert dpm_f["mean_queue_depth"] == dpm_e["mean_queue_depth"]
    np.testing.assert_allclose(
        np.asarray(dpm_f["power"]),
        np.asarray(dpm_e["power"]),
        rtol=1e-6,
        atol=1e-9,
    )


def config(policy, **overrides):
    kwargs = dict(
        num_disks=40,
        load_constraint=0.6,
        dpm_policy=policy,
        control_interval=150.0,
    )
    if policy == "slo_feedback":
        kwargs["slo_target"] = SLO_TARGET
    kwargs.update(overrides)
    return StorageConfig(**kwargs)


@pytest.fixture(scope="module")
def sparse_workload():
    """Sparse traffic over many disks: real spin activity under control."""
    return generate_workload(
        SyntheticWorkloadParams(
            n_files=1_200, arrival_rate=1.0, duration=900.0, seed=11
        )
    )


@pytest.fixture(scope="module")
def mixed_fixture():
    """Mixed read/write stream with new files left to the write policy."""
    base = generate_workload(
        SyntheticWorkloadParams(
            n_files=300, arrival_rate=0.8, duration=700.0, seed=29
        )
    )
    catalog, stream = generate_mixed_workload(
        base.catalog,
        MixedWorkloadParams(
            write_fraction=0.35,
            new_file_fraction=0.6,
            arrival_rate=1.2,
            duration=700.0,
            seed=29,
        ),
    )
    mapping = np.arange(catalog.n, dtype=np.int64) % 10
    mapping[base.catalog.n:] = -1
    return catalog, stream, mapping


@pytest.mark.parametrize("policy", DYNAMIC)
def test_read_only_agrees_across_engines(policy, sparse_workload):
    """Iterates the registry, so future policies are covered automatically."""
    cfg = config(policy)
    mapping = allocate(
        sparse_workload.catalog, "pack", cfg, 1.0
    ).mapping(sparse_workload.catalog.n)
    event, fast = run_both(
        sparse_workload.catalog, sparse_workload.stream, mapping, cfg
    )
    assert_equivalent(event, fast)
    assert event.spindowns > 0  # the scenario exercises spin transitions


@pytest.mark.parametrize("cache_policy", [None, "lru"])
@pytest.mark.parametrize("policy", DYNAMIC)
def test_mixed_writes_agree_across_engines(policy, cache_policy, mixed_fixture):
    catalog, stream, mapping = mixed_fixture
    cfg = config(
        policy,
        num_disks=10,
        load_constraint=0.7,
        cache_policy=cache_policy,
        cache_capacity=GiB,
    )
    event, fast = run_both(catalog, stream, mapping, cfg, num_disks=10)
    assert_equivalent(event, fast)
    # Placement decisions stayed byte-identical under control.
    assert np.array_equal(fast.final_mapping, event.final_mapping)
    assert event.arrivals > 0


def test_policies_actually_steer_differently(sparse_workload):
    """Sanity: the grid is not vacuous — policies produce distinct runs."""
    cfg0 = config("adaptive_timeout")
    mapping = allocate(
        sparse_workload.catalog, "pack", cfg0, 1.0
    ).mapping(sparse_workload.catalog.n)
    spinups = {}
    for policy in DYNAMIC + ("fixed",):
        cfg = config(policy, engine="fast")
        res = StorageSystem(
            sparse_workload.catalog, mapping, cfg
        ).run(sparse_workload.stream)
        spinups[policy] = (res.spinups, round(res.energy, 3))
    assert len(set(spinups.values())) >= 3


class TestFixedIsByteIdentical:
    """``dpm_policy="fixed"`` reproduces the pre-control simulator exactly."""

    def _workload(self):
        return generate_workload(
            SyntheticWorkloadParams(
                n_files=800, arrival_rate=2.0, duration=500.0, seed=7
            )
        )

    def test_event_engine_matches_manual_machinery(self):
        """A StorageSystem run with the default (fixed) policy equals a
        hand-assembled pre-control simulation bit for bit: no controller
        process exists to perturb event ordering or float accumulation.
        """
        wl = self._workload()
        cfg = StorageConfig(num_disks=30, load_constraint=0.7)
        mapping = allocate(wl.catalog, "pack", cfg, 2.0).mapping(wl.catalog.n)

        system = StorageSystem(wl.catalog, mapping, cfg)
        via_system = system.run(wl.stream)

        env = Environment()
        array = DiskArray(
            env, cfg.spec, system.num_disks, idleness_threshold=cfg.threshold
        )
        dispatcher = Dispatcher(
            env, array, mapping, wl.catalog.sizes,
            usable_capacity=cfg.usable_capacity,
        )
        env.process(drive_stream(env, dispatcher, wl.stream))
        env.run(until=wl.stream.duration)

        assert via_system.energy == array.total_energy()  # exact
        assert np.array_equal(
            via_system.response_times, dispatcher.responses_array()
        )
        assert via_system.spinups == array.total_spinups()
        assert via_system.spindowns == array.total_spindowns()
        assert "dpm" not in via_system.extra

    def test_fast_engine_default_path_has_no_controller(self):
        wl = self._workload()
        cfg = StorageConfig(num_disks=30, load_constraint=0.7, engine="fast")
        mapping = allocate(wl.catalog, "pack", cfg, 2.0).mapping(wl.catalog.n)
        system = StorageSystem(wl.catalog, mapping, cfg)
        via_system = system.run(wl.stream)

        direct = simulate_fast(
            sizes=wl.catalog.sizes,
            mapping=mapping,
            spec=cfg.spec,
            num_disks=system.num_disks,
            threshold=cfg.threshold,
            stream=wl.stream,
            duration=wl.stream.duration,
        )
        assert via_system.energy == direct.energy  # exact
        assert np.array_equal(via_system.response_times, direct.response_times)
        assert via_system.spinups == direct.spinups
        assert "dpm" not in via_system.extra

    def test_controlled_machinery_degenerates_to_fixed(self):
        """Forcing the fixed policy *through* the interval-segmented path
        must reproduce the plain fixed run exactly — segmentation, the
        per-gap threshold lookups and the telemetry plumbing change no
        simulated quantity.
        """
        wl = self._workload()
        cfg = StorageConfig(num_disks=30, load_constraint=0.7)
        mapping = allocate(wl.catalog, "pack", cfg, 2.0).mapping(wl.catalog.n)
        num_disks = max(cfg.num_disks, int(mapping.max()) + 1)

        plain = simulate_fast(
            sizes=wl.catalog.sizes,
            mapping=mapping,
            spec=cfg.spec,
            num_disks=num_disks,
            threshold=cfg.threshold,
            stream=wl.stream,
            duration=wl.stream.duration,
        )
        controller = ThresholdController(
            "fixed", 100.0, num_disks, cfg.threshold, cfg.spec
        )
        controlled = simulate_fast(
            sizes=wl.catalog.sizes,
            mapping=mapping,
            spec=cfg.spec,
            num_disks=num_disks,
            threshold=cfg.threshold,
            stream=wl.stream,
            duration=wl.stream.duration,
            dpm=controller,
        )
        assert controlled.energy == plain.energy  # bit-for-bit
        assert np.array_equal(controlled.response_times, plain.response_times)
        assert controlled.spinups == plain.spinups
        assert controlled.spindowns == plain.spindowns
        assert np.array_equal(
            controlled.energy_per_disk, plain.energy_per_disk
        )
        # And the trace confirms the thresholds never moved.
        trace = controlled.extra["dpm"]["thresholds"]
        assert all(
            row == [cfg.threshold] * num_disks for row in trace
        )
