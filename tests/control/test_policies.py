"""Unit tests for the DPM policy registry and each policy's control law."""

import math

import numpy as np
import pytest

from repro.control import (
    DEFAULT_DPM_POLICY,
    DPM_POLICIES,
    DPMPolicy,
    IntervalTelemetry,
    ThresholdController,
    controller_from,
    dpm_policy_names,
    make_dpm_policy,
    register_dpm_policy,
)
from repro.disk.specs import ST3500630AS
from repro.errors import ConfigError
from repro.system.config import StorageConfig

SPEC = ST3500630AS
BE = SPEC.breakeven_threshold()  # ~53.3 s


def telemetry(policy_thresholds, gaps=None, responses=(), slo_estimate=None):
    n = len(policy_thresholds)
    responses = np.asarray(responses, dtype=float)
    est = (
        float(np.percentile(responses, 95)) if responses.size else math.nan
    )
    return IntervalTelemetry(
        index=0,
        t_start=0.0,
        t_end=100.0,
        responses=responses,
        gaps=gaps if gaps is not None else [[] for _ in range(n)],
        queue_depth=np.zeros(n),
        thresholds=np.asarray(policy_thresholds, dtype=float),
        p95_running=est,
        p99_running=est,
        slo_estimate=est if slo_estimate is None else slo_estimate,
    )


def fresh(name, num_disks=4, base=BE, slo_target=None):
    policy = make_dpm_policy(name)
    policy.reset(
        num_disks=num_disks,
        base_threshold=base,
        spec=SPEC,
        slo_target=slo_target,
        slo_percentile=95.0,
    )
    return policy


class TestRegistry:
    def test_expected_policies_registered(self):
        names = dpm_policy_names()
        assert names[0] == DEFAULT_DPM_POLICY == "fixed"
        for required in (
            "fixed",
            "adaptive_timeout",
            "exponential_predictive",
            "slo_feedback",
        ):
            assert required in names

    def test_make_by_name_and_passthrough(self):
        policy = make_dpm_policy("adaptive_timeout")
        assert policy.name == "adaptive_timeout"
        assert make_dpm_policy(policy) is policy
        assert make_dpm_policy(None).name == "fixed"

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigError, match="unknown DPM policy"):
            make_dpm_policy("does_not_exist")

    def test_duplicate_registration_rejected(self):
        class Dup(DPMPolicy):
            name = "fixed"

        with pytest.raises(ConfigError, match="duplicate"):
            register_dpm_policy(Dup)

    def test_only_fixed_is_static(self):
        statics = [n for n, cls in DPM_POLICIES.items() if cls.static]
        assert statics == ["fixed"]

    def test_controller_from_skips_static_policies(self):
        assert controller_from("fixed", 100.0, 4, BE, SPEC) is None
        ctl = controller_from("adaptive_timeout", 100.0, 4, BE, SPEC)
        assert isinstance(ctl, ThresholdController)


class TestConfigValidation:
    def test_defaults(self):
        cfg = StorageConfig()
        assert cfg.dpm_policy == "fixed"
        assert cfg.dpm_controller(cfg.num_disks) is None

    def test_dynamic_policy_builds_controller(self):
        cfg = StorageConfig(dpm_policy="adaptive_timeout")
        ctl = cfg.dpm_controller(cfg.num_disks)
        assert ctl.policy.name == "adaptive_timeout"
        assert ctl.interval == cfg.control_interval
        assert ctl.thresholds.shape == (cfg.num_disks,)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(dpm_policy="nope"),
            dict(control_interval=0.0),
            dict(control_interval=-5.0),
            dict(slo_target=0.0),
            dict(slo_target=-1.0),
            dict(slo_percentile=0.0),
            dict(slo_percentile=100.0),
            dict(dpm_policy="slo_feedback"),  # needs slo_target
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            StorageConfig(**kwargs)

    def test_slo_feedback_with_target_accepted(self):
        cfg = StorageConfig(dpm_policy="slo_feedback", slo_target=10.0)
        ctl = cfg.dpm_controller(8)
        assert ctl.policy.slo_target == 10.0


class TestFixed:
    def test_static_and_identity_update(self):
        policy = fresh("fixed")
        assert policy.static
        init = policy.initial_thresholds()
        assert np.all(init == BE)
        out = policy.update(telemetry(init))
        assert np.array_equal(out, init)


class TestAdaptiveTimeout:
    def test_regrets_raise_threshold(self):
        policy = fresh("adaptive_timeout")
        # Gap just over the threshold with post-threshold residency far
        # below break-even: a regretted spin-down.
        gaps = [[(BE + 1.0, BE)], [], [], []]
        out = policy.update(telemetry(policy.initial_thresholds(), gaps))
        assert out[0] == pytest.approx(2 * BE)
        assert np.all(out[1:] == BE)

    def test_wastes_lower_threshold(self):
        policy = fresh("adaptive_timeout")
        # Idled through a break-even-worthy gap without sleeping.
        gaps = [[], [(BE * 0.9 + BE, BE * 2)], [], []]
        policy._th[:] = BE * 2
        out = policy.update(telemetry(policy.initial_thresholds(), gaps))
        assert out[1] == pytest.approx(BE)

    def test_balanced_interval_holds(self):
        policy = fresh("adaptive_timeout")
        # One regret (spun down for less than break-even) cancels one
        # waste (idled through a break-even-worthy gap): hold.
        gaps = [[(BE + 1.0, BE), (1.5 * BE, 2 * BE)], [], [], []]
        out = policy.update(telemetry(policy.initial_thresholds(), gaps))
        assert out[0] == pytest.approx(BE)

    def test_profitable_spin_down_is_not_a_regret(self):
        policy = fresh("adaptive_timeout")
        # Slept well past break-even: the spin-down paid off, no change.
        gaps = [[(2 * BE + 1.0, BE)], [], [], []]
        out = policy.update(telemetry(policy.initial_thresholds(), gaps))
        assert out[0] == pytest.approx(BE)

    def test_clamped_to_span(self):
        policy = fresh("adaptive_timeout")
        regret = [[(BE + 1.0, BE)], [], [], []]
        for _ in range(20):
            out = policy.update(telemetry(policy.initial_thresholds(), regret))
        assert out[0] == pytest.approx(BE * policy.span)
        waste = [[(BE * 10, BE * policy.span)], [], [], []]
        for _ in range(40):
            out = policy.update(telemetry(policy.initial_thresholds(), waste))
        assert out[0] == pytest.approx(BE / policy.span)

    def test_infinite_base_is_left_alone(self):
        policy = fresh("adaptive_timeout", base=math.inf)
        gaps = [[(BE * 10, math.inf)], [], [], []]
        out = policy.update(telemetry(policy.initial_thresholds(), gaps))
        assert math.isinf(out[0])


class TestExponentialPredictive:
    def test_prediction_seeds_at_breakeven(self):
        policy = fresh("exponential_predictive")
        out = policy.update(telemetry(policy.initial_thresholds()))
        # Seeded exactly at break-even: not *above* it, so no spin-down.
        assert np.all(out == BE)

    def test_long_gaps_trigger_immediate_spin_down(self):
        policy = fresh("exponential_predictive")
        gaps = [[(10 * BE, BE)], [], [], []]
        out = policy.update(telemetry(policy.initial_thresholds(), gaps))
        assert out[0] == 0.0
        assert np.all(out[1:] == BE)

    def test_short_gaps_fall_back_to_base(self):
        policy = fresh("exponential_predictive")
        long_gaps = [[(10 * BE, BE)], [], [], []]
        policy.update(telemetry(policy.initial_thresholds(), long_gaps))
        short_gaps = [[(0.1, 0.0)] * 8, [], [], []]
        out = policy.update(telemetry(policy.initial_thresholds(), short_gaps))
        assert out[0] == BE

    def test_ewma_recursion(self):
        policy = fresh("exponential_predictive")
        gaps = [[(100.0, BE), (200.0, BE)], [], [], []]
        policy.update(telemetry(policy.initial_thresholds(), gaps))
        expected = 0.5 * 200.0 + 0.5 * (0.5 * 100.0 + 0.5 * BE)
        assert policy._pred[0] == pytest.approx(expected)


class TestSloFeedback:
    def test_requires_target(self):
        with pytest.raises(ConfigError, match="slo_target"):
            fresh("slo_feedback")

    def test_violation_relaxes(self):
        policy = fresh("slo_feedback", slo_target=10.0)
        out = policy.update(
            telemetry(policy.initial_thresholds(), slo_estimate=15.0)
        )
        assert np.all(out == pytest.approx(BE * policy.relax))

    def test_slack_tightens(self):
        policy = fresh("slo_feedback", slo_target=10.0)
        out = policy.update(
            telemetry(policy.initial_thresholds(), slo_estimate=2.0)
        )
        assert np.all(out == pytest.approx(BE / policy.tighten))

    def test_deadband_holds(self):
        policy = fresh("slo_feedback", slo_target=10.0)
        out = policy.update(
            telemetry(policy.initial_thresholds(), slo_estimate=9.0)
        )
        assert np.all(out == pytest.approx(BE))

    def test_nan_estimate_holds(self):
        policy = fresh("slo_feedback", slo_target=10.0)
        out = policy.update(
            telemetry(policy.initial_thresholds(), slo_estimate=math.nan)
        )
        assert np.all(out == pytest.approx(BE))

    def test_clamps(self):
        policy = fresh("slo_feedback", slo_target=10.0)
        for _ in range(20):
            out = policy.update(
                telemetry(policy.initial_thresholds(), slo_estimate=99.0)
            )
        assert np.all(out == pytest.approx(BE * policy.span))
        for _ in range(60):
            out = policy.update(
                telemetry(policy.initial_thresholds(), slo_estimate=0.1)
            )
        assert np.all(out == pytest.approx(BE / policy.span))


class TestThresholdController:
    def test_rejects_bad_interval(self):
        with pytest.raises(ConfigError, match="interval"):
            ThresholdController("adaptive_timeout", 0.0, 4, BE, SPEC)

    def test_records_one_row_per_interval_and_traces(self):
        ctl = ThresholdController("adaptive_timeout", 100.0, 2, BE, SPEC)
        gaps = [[(BE + 1.0, BE)], []]
        ctl.advance(0.0, 100.0, np.array([1.0, 2.0]), gaps, np.zeros(2))
        ctl.finalize(100.0, 150.0, np.array([3.0]), [[], []], np.zeros(2))
        assert len(ctl.records) == 2
        extra = ctl.extra()
        assert extra["policy"] == "adaptive_timeout"
        assert extra["completions"] == [2, 1]
        assert extra["t_end"] == [100.0, 150.0]
        # The second row's thresholds reflect the first update's decision.
        assert extra["thresholds"][1][0] == pytest.approx(2 * BE)
        assert extra["power"] is None  # no power attached

    def test_attach_power_shape_checked(self):
        ctl = ThresholdController("adaptive_timeout", 100.0, 2, BE, SPEC)
        ctl.finalize(0.0, 50.0, np.empty(0), [[], []], np.zeros(2))
        with pytest.raises(Exception):
            ctl.attach_power(np.zeros((3, 2)))
        ctl.attach_power(np.full((1, 2), 9.3))
        assert ctl.extra()["power"] == [[9.3, 9.3]]
