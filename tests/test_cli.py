"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestList:
    def test_lists_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig2", "fig5", "table2", "complexity"):
            assert name in out


class TestInfo:
    def test_info_mentions_paper(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "Otoo" in out
        assert "Pack_Disks" in out


class TestRun:
    def test_run_table2(self, capsys):
        assert main(["run", "table2"]) == 0
        out = capsys.readouterr().out
        assert "53.3" in out

    def test_run_with_csv_export(self, capsys, tmp_path):
        code = main(
            ["run", "quality", "--scale", "0.1", "--csv-dir", str(tmp_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "pack_disks" in out

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_run_placement_with_write_policy(self, capsys):
        code = main(
            [
                "run", "placement", "--scale", "0.02",
                "--engine", "fast", "--sweep-cache", "off",
                "--write-policy", "round_robin",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "round_robin power" in out
        # Restricted to one policy: no other registry entry is swept.
        assert "spinning_best_fit power" not in out
        assert "first_fit_spinning" not in out

    def test_write_policy_rejected_for_other_experiments(self, capsys):
        assert main(
            ["run", "table2", "--write-policy", "round_robin"]
        ) == 2
        assert "not applicable" in capsys.readouterr().err

    def test_seed_override(self, capsys):
        assert main(["run", "complexity", "--scale", "0.2", "--seed", "5"]) == 0

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
