"""Frozen uniform-fleet scenarios for the byte-identity regression test.

The heterogeneous-fleet refactor rewired per-disk constants through the
dispatcher, placement, control and both simulation kernels.  Its contract
is that **uniform** configurations (``spec=...``, no ``fleet``) remain
byte-identical to the pre-refactor engines.  The scenarios here were run
against the pre-refactor tree and their outputs recorded (as exact float
hex) in ``golden_uniform.json``; ``test_uniform_byte_identity.py`` replays
them against the current tree and compares bit-for-bit.

Do not edit the scenario recipes — they are frozen by the recorded
goldens.  Add new recipes (and regenerate the JSON) only for features
whose uniform behaviour is *intended* to be frozen from now on.
"""

from __future__ import annotations

import math

import numpy as np

from repro.system import StorageConfig, StorageSystem
from repro.units import GiB, MB
from repro.workload.catalog import FileCatalog
from repro.workload.arrivals import RequestStream
from repro.workload.mixed import MixedRequestStream


def _workload(seed, num_disks, n_files, count, duration, write_frac, n_new):
    """Deterministic catalog + stream + mapping (diffgen-lite, frozen)."""
    rng = np.random.default_rng(seed)
    sizes = rng.uniform(5 * MB, 400 * MB, size=n_files)
    weights = rng.zipf(1.8, size=n_files).astype(float)
    catalog = FileCatalog(sizes=sizes, popularities=weights / weights.sum())
    times = np.sort(rng.uniform(0.0, duration, size=count))
    file_ids = rng.choice(n_files, size=count, p=catalog.popularities)
    mapping = rng.integers(0, num_disks, size=n_files).astype(np.int64)
    if write_frac > 0.0:
        if n_new:
            new_sizes = rng.uniform(5 * MB, 400 * MB, size=n_new)
            catalog = FileCatalog(
                sizes=np.concatenate([catalog.sizes, new_sizes]),
                popularities=np.concatenate(
                    [catalog.popularities, np.zeros(n_new)]
                ),
            )
            mapping = np.concatenate(
                [mapping, np.full(n_new, -1, dtype=np.int64)]
            )
        kinds = np.where(
            rng.random(count) < write_frac, "write", "read"
        ).astype(object)
        if n_new:
            new_ids = np.arange(n_files, n_files + n_new)
            slots = np.sort(
                rng.choice(count, size=min(n_new, count), replace=False)
            )
            for slot, fid in zip(slots, new_ids):
                file_ids[slot] = fid
                kinds[slot] = "write"
        stream = MixedRequestStream(
            times=times,
            file_ids=file_ids,
            kinds=np.asarray(kinds, dtype=object),
            duration=duration,
        )
    else:
        stream = RequestStream(
            times=times, file_ids=file_ids, duration=duration
        )
    return catalog, stream, mapping


#: name -> (workload kwargs, config kwargs).  Every case runs on both
#: engines.  All configs are uniform (``spec`` default, no ``fleet``).
CASES = {
    "read_finite_th": (
        dict(seed=101, num_disks=4, n_files=60, count=400, duration=500.0,
             write_frac=0.0, n_new=0),
        dict(num_disks=4, idleness_threshold=20.0),
    ),
    "read_inf_th": (
        dict(seed=102, num_disks=3, n_files=40, count=300, duration=400.0,
             write_frac=0.0, n_new=0),
        dict(num_disks=3, idleness_threshold=math.inf),
    ),
    "read_zero_th": (
        dict(seed=103, num_disks=5, n_files=50, count=250, duration=450.0,
             write_frac=0.0, n_new=0),
        dict(num_disks=5, idleness_threshold=0.0),
    ),
    "writes_placement": (
        dict(seed=104, num_disks=4, n_files=50, count=350, duration=500.0,
             write_frac=0.4, n_new=10),
        dict(num_disks=4, idleness_threshold=30.0,
             write_policy="spinning_best_fit"),
    ),
    "cache_lru": (
        dict(seed=105, num_disks=4, n_files=45, count=400, duration=450.0,
             write_frac=0.0, n_new=0),
        dict(num_disks=4, idleness_threshold=25.0, cache_policy="lru",
             cache_capacity=2.0 * GiB, cache_hit_latency=0.05),
    ),
    "ladder_nap": (
        dict(seed=106, num_disks=4, n_files=55, count=300, duration=500.0,
             write_frac=0.0, n_new=0),
        dict(num_disks=4, dpm_ladder="nap"),
    ),
    "ladder_drpm4_adaptive": (
        dict(seed=107, num_disks=4, n_files=50, count=320, duration=480.0,
             write_frac=0.0, n_new=0),
        dict(num_disks=4, dpm_ladder="drpm4", dpm_policy="adaptive_timeout",
             control_interval=60.0),
    ),
    "slo_feedback_writes": (
        dict(seed=108, num_disks=5, n_files=60, count=380, duration=520.0,
             write_frac=0.3, n_new=8),
        dict(num_disks=5, idleness_threshold=40.0, dpm_policy="slo_feedback",
             control_interval=80.0, slo_target=10.0, slo_percentile=95.0,
             cache_policy="clock", cache_capacity=1.0 * GiB,
             write_policy="spinning_worst_fit"),
    ),
    "exp_predictive": (
        dict(seed=109, num_disks=3, n_files=40, count=260, duration=420.0,
             write_frac=0.0, n_new=0),
        dict(num_disks=3, dpm_policy="exponential_predictive",
             control_interval=70.0),
    ),
    "chunked_writes_cache": (
        dict(seed=110, num_disks=4, n_files=50, count=340, duration=480.0,
             write_frac=0.35, n_new=9),
        dict(num_disks=4, idleness_threshold=35.0, cache_policy="lru",
             cache_capacity=1.5 * GiB, write_policy="round_robin",
             chunk_size=17),
    ),
}

#: Engines each case runs on; chunked configs are fast-only (chunk_size
#: is a fast-kernel knob).
def engines_for(name):
    if name == "chunked_writes_cache":
        return ("fast",)
    return ("event", "fast")


def run_case(name, engine):
    wl_kw, cfg_kw = CASES[name]
    catalog, stream, mapping = _workload(**wl_kw)
    config = StorageConfig(engine=engine, **cfg_kw)
    system = StorageSystem(
        catalog, mapping, config, num_disks=cfg_kw["num_disks"]
    )
    return system.run(stream)


def summarize(result):
    """Exact (hex-float) digest of everything byte-identity promises."""
    resp = np.asarray(result.response_times, dtype=float)
    sample = resp[:3].tolist() + resp[-3:].tolist() if resp.size else []
    out = {
        "energy": float(result.energy).hex(),
        "energy_per_disk": [float(e).hex() for e in result.energy_per_disk],
        "arrivals": int(result.arrivals),
        "completions": int(result.completions),
        "spinups": int(result.spinups),
        "spindowns": int(result.spindowns),
        "resp_sum": float(resp.sum()).hex(),
        "resp_sample": [float(v).hex() for v in sample],
        "state_durations": {
            str(k): float(v).hex()
            for k, v in sorted(
                result.state_durations.items(), key=lambda kv: str(kv[0])
            )
        },
        "requests_per_disk": [int(v) for v in result.requests_per_disk],
        "final_mapping": [int(v) for v in result.final_mapping],
        "always_on_energy": float(result.always_on_energy).hex(),
    }
    if "dpm" in result.extra:
        dpm = result.extra["dpm"]
        out["dpm_thresholds"] = [
            [float(t).hex() for t in row] for row in dpm["thresholds"]
        ]
        out["dpm_t_end"] = [float(t).hex() for t in dpm["t_end"]]
        out["dpm_completions"] = [int(c) for c in dpm["completions"]]
    return out
