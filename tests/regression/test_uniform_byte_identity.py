"""Uniform configs must stay byte-identical across the fleet refactor.

``golden_uniform.json`` holds exact hex-float digests of the frozen
scenarios in :mod:`golden_cases`, recorded against the pre-refactor tree
(before per-disk capacity/threshold/spec vectors were threaded through
the dispatcher, placement, control and both kernels).  A uniform pool is
now represented internally as vectors of identical per-disk values;
IEEE-754 arithmetic on those is bit-identical to the old scalar code, so
every digest must match exactly — any mismatch is a real numeric
regression, not float noise.
"""

import json
import pathlib

import pytest

import golden_cases as gc

_GOLDEN = json.loads(
    (pathlib.Path(__file__).parent / "golden_uniform.json").read_text()
)


@pytest.mark.parametrize(
    "key",
    sorted(_GOLDEN),
    ids=lambda k: k.replace(":", "-"),
)
def test_uniform_output_is_byte_identical(key):
    name, engine = key.split(":")
    got = gc.summarize(gc.run_case(name, engine))
    want = _GOLDEN[key]
    assert sorted(got) == sorted(want), f"digest keys changed for {key}"
    for field in want:
        assert got[field] == want[field], (
            f"{key}: field {field!r} drifted from the pre-refactor value"
        )


def test_uniform_fleet_sugar_matches_spec():
    """``fleet=Fleet.uniform(spec)`` is pure sugar for ``spec=...``."""
    from repro.disk.fleet import Fleet
    from repro.system import StorageConfig, StorageSystem

    wl_kw, cfg_kw = gc.CASES["writes_placement"]
    catalog, stream, mapping = gc._workload(**wl_kw)
    for engine in ("event", "fast"):
        base = StorageSystem(
            catalog, mapping, StorageConfig(engine=engine, **cfg_kw),
            num_disks=cfg_kw["num_disks"],
        ).run(stream)
        fleet_cfg = StorageConfig(
            engine=engine,
            fleet=Fleet.uniform(StorageConfig().spec),
            **cfg_kw,
        )
        sugar = StorageSystem(
            catalog, mapping, fleet_cfg, num_disks=cfg_kw["num_disks"]
        ).run(stream)
        assert gc.summarize(base) == gc.summarize(sugar), engine
