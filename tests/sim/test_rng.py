"""Unit tests for the RNG stream helpers."""

import numpy as np
import pytest

from repro.sim import rng_from_seed, spawn_rngs


class TestRngFromSeed:
    def test_int_seed_deterministic(self):
        a = rng_from_seed(42).integers(0, 1_000_000, size=10)
        b = rng_from_seed(42).integers(0, 1_000_000, size=10)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(1)
        assert rng_from_seed(gen) is gen

    def test_seed_sequence(self):
        ss = np.random.SeedSequence(5)
        rng = rng_from_seed(ss)
        assert isinstance(rng, np.random.Generator)

    def test_none_gives_generator(self):
        assert isinstance(rng_from_seed(None), np.random.Generator)


class TestSpawn:
    def test_streams_differ(self):
        a, b = spawn_rngs(42, 2)
        assert not np.array_equal(
            a.integers(0, 2**32, size=100), b.integers(0, 2**32, size=100)
        )

    def test_deterministic(self):
        first = [g.integers(0, 2**32) for g in spawn_rngs(7, 3)]
        second = [g.integers(0, 2**32) for g in spawn_rngs(7, 3)]
        assert first == second

    def test_spawn_from_generator(self):
        children = spawn_rngs(np.random.default_rng(3), 4)
        assert len(children) == 4

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(1, -1)

    def test_zero_count(self):
        assert spawn_rngs(1, 0) == []
