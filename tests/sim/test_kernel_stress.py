"""Property-based stress tests of the event kernel and drive substrate.

These hammer the kernel with randomized process structures and the drive
with randomized request patterns, asserting global invariants (clock
monotonicity, conservation, FIFO, accounting identities) rather than
specific values.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.disk import DiskDrive, ST3500630AS
from repro.disk.power import PowerModel
from repro.sim import AllOf, AnyOf, Environment, Interrupt
from repro.units import MB


class TestKernelStress:
    @given(
        st.lists(
            st.lists(st.floats(0.0, 50.0), min_size=1, max_size=10),
            min_size=1,
            max_size=10,
        )
    )
    def test_random_process_forest_completes(self, delays_per_process):
        env = Environment()
        stamps = []
        finished = []

        def worker(env, delays):
            for d in delays:
                yield env.timeout(d)
                stamps.append(env.now)
            finished.append(True)

        for delays in delays_per_process:
            env.process(worker(env, delays))
        env.run()
        assert len(finished) == len(delays_per_process)
        assert stamps == sorted(stamps)
        assert env.now == pytest.approx(
            max(sum(d) for d in delays_per_process)
        )

    @given(
        st.lists(st.floats(0.1, 100.0), min_size=2, max_size=8),
        st.integers(0, 6),
    )
    def test_anyof_fires_at_minimum(self, delays, extra):
        env = Environment()
        timeouts = [env.timeout(d) for d in delays]
        cond = AnyOf(env, timeouts)
        env.run(until=cond)
        assert env.now == pytest.approx(min(delays))

    @given(st.lists(st.floats(0.1, 100.0), min_size=1, max_size=8))
    def test_allof_fires_at_maximum(self, delays):
        env = Environment()
        cond = AllOf(env, [env.timeout(d) for d in delays])
        env.run(until=cond)
        assert env.now == pytest.approx(max(delays))

    @given(
        st.floats(1.0, 50.0),
        st.floats(0.1, 100.0),
    )
    def test_interrupt_vs_timeout_race(self, sleep_for, interrupt_at):
        # Whatever the ordering, the process finishes exactly once and the
        # clock lands at a consistent spot.
        env = Environment()
        outcome = []

        def sleeper(env):
            try:
                yield env.timeout(sleep_for)
                outcome.append("slept")
            except Interrupt:
                outcome.append("interrupted")

        p = env.process(sleeper(env))

        def interrupter(env):
            yield env.timeout(interrupt_at)
            if p.is_alive:
                p.interrupt()

        env.process(interrupter(env))
        env.run()
        assert len(outcome) == 1
        # Strictly-before interrupts win; ties resolve to the timeout
        # (scheduled first at the same instant).
        if interrupt_at < sleep_for:
            assert outcome == ["interrupted"]
        else:
            assert outcome == ["slept"]


class TestDriveStress:
    @settings(max_examples=25)
    @given(
        gaps=st.lists(st.floats(0.01, 400.0), min_size=1, max_size=40),
        sizes=st.lists(st.floats(0.0, 500.0), min_size=1, max_size=40),
        threshold=st.floats(1.0, 300.0),
    )
    def test_accounting_invariants(self, gaps, sizes, threshold):
        env = Environment()
        drive = DiskDrive(env, ST3500630AS, idleness_threshold=threshold)
        n = min(len(gaps), len(sizes))
        times = np.cumsum(gaps[:n])

        def feeder(env):
            for t, mb in zip(times, sizes[:n]):
                yield env.timeout(t - env.now)
                drive.submit(0, mb * MB)

        env.process(feeder(env))
        horizon = float(times[-1]) + 2_000.0
        env.run(until=horizon)

        durations = drive.state_durations()
        # 1. State time covers the whole horizon.
        assert sum(durations.values()) == pytest.approx(horizon)
        # 2. Energy identity.
        pm = PowerModel(ST3500630AS)
        assert drive.energy() == pytest.approx(pm.energy(durations))
        # 3. Conservation: everything submitted completed (huge horizon).
        assert drive.stats.completions == n
        # 4. Spin cycles alternate: ups never exceed downs.
        assert drive.stats.spinups <= drive.stats.spindowns
        assert drive.stats.spindowns <= drive.stats.spinups + 1
        # 5. Responses at least the service floor.
        assert drive.stats.response.minimum >= -1e-9

    @settings(max_examples=15)
    @given(st.integers(2, 15), st.integers(0, 2**31 - 1))
    def test_fifo_order_preserved(self, burst, seed):
        # A burst submitted together completes in submission order.
        env = Environment()
        drive = DiskDrive(env, ST3500630AS, idleness_threshold=math.inf)
        rng = np.random.default_rng(seed)
        order = []
        requests = []
        for i in range(burst):
            req = drive.submit(i, float(rng.uniform(1, 50)) * MB)
            req.done.callbacks.append(
                lambda ev, i=i: order.append(i)
            )
            requests.append(req)
        env.run(until=10_000.0)
        assert order == list(range(burst))


class TestFailureInjection:
    def test_dead_feeder_does_not_corrupt_drive(self):
        # A workload process dying mid-stream leaves the drive consistent.
        env = Environment()
        drive = DiskDrive(env, ST3500630AS, idleness_threshold=50.0)

        def doomed(env):
            drive.submit(0, 10 * MB)
            yield env.timeout(1.0)
            raise RuntimeError("feeder crashed")

        env.process(doomed(env))
        with pytest.raises(RuntimeError, match="feeder crashed"):
            env.run(until=1_000.0)
        # The drive can keep running in the same environment afterwards.
        drive.submit(1, 10 * MB)
        env.run(until=2_000.0)
        assert drive.stats.completions == 2
        assert sum(drive.state_durations().values()) == pytest.approx(2_000.0)

    def test_failed_completion_listener_propagates(self):
        env = Environment()
        drive = DiskDrive(env, ST3500630AS, idleness_threshold=math.inf)
        req = drive.submit(0, 10 * MB)

        def watcher(env):
            yield req.done
            raise ValueError("listener bug")

        env.process(watcher(env))
        with pytest.raises(ValueError, match="listener bug"):
            env.run(until=100.0)
