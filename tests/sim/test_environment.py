"""Unit tests for the environment: ordering, priorities, run semantics."""

import math

import pytest

from repro.errors import SimulationError
from repro.sim import EmptySchedule, Environment


class TestScheduling:
    def test_clock_starts_at_initial_time(self):
        assert Environment().now == 0.0
        assert Environment(initial_time=100.0).now == 100.0

    def test_fifo_order_at_same_timestamp(self, env):
        order = []
        for i in range(5):
            ev = env.event()
            ev.callbacks.append(lambda e, i=i: order.append(i))
            ev.succeed()
        env.run()
        assert order == [0, 1, 2, 3, 4]

    def test_urgent_processed_before_normal(self, env):
        order = []
        normal = env.event()
        normal.callbacks.append(lambda e: order.append("normal"))
        normal.succeed()
        urgent = env.event()
        urgent.callbacks.append(lambda e: order.append("urgent"))
        urgent._ok = True
        urgent._value = None
        env._schedule(urgent, priority=0)
        env.step()
        env.step()
        assert order == ["urgent", "normal"]

    def test_time_ordering(self, env):
        times = []

        def proc(env, delay):
            yield env.timeout(delay)
            times.append(env.now)

        for d in (5.0, 1.0, 3.0):
            env.process(proc(env, d))
        env.run()
        assert times == [1.0, 3.0, 5.0]

    def test_peek(self, env):
        assert env.peek() == math.inf
        env.timeout(7.0)
        # The process-less timeout is scheduled at 7.
        assert env.peek() == 7.0

    def test_step_on_empty_raises(self, env):
        with pytest.raises(EmptySchedule):
            env.step()


class TestRun:
    def test_run_until_time_stops_exactly(self, env):
        fired = []

        def proc(env):
            while True:
                yield env.timeout(1.0)
                fired.append(env.now)

        env.process(proc(env))
        env.run(until=3.5)
        assert env.now == 3.5
        assert fired == [1.0, 2.0, 3.0]

    def test_events_at_until_are_not_processed(self, env):
        fired = []

        def proc(env):
            yield env.timeout(5.0)
            fired.append(env.now)

        env.process(proc(env))
        env.run(until=5.0)
        assert fired == []  # NORMAL event at t=5 stays pending
        assert env.now == 5.0

    def test_run_until_event_returns_value(self, env):
        def proc(env):
            yield env.timeout(2.0)
            return "val"

        assert env.run(until=env.process(proc(env))) == "val"

    def test_run_until_past_raises(self):
        env = Environment(initial_time=10.0)
        with pytest.raises(ValueError):
            env.run(until=5.0)

    def test_run_until_never_triggered_event_raises(self, env):
        ev = env.event()
        with pytest.raises(SimulationError, match="never triggered"):
            env.run(until=ev)

    def test_run_to_exhaustion_returns_none(self, env):
        env.timeout(1.0)
        assert env.run() is None
        assert env.now == 1.0

    def test_run_until_failed_event_raises(self, env):
        def proc(env):
            yield env.timeout(1.0)
            raise KeyError("k")

        p = env.process(proc(env))
        with pytest.raises(KeyError):
            env.run(until=p)

    def test_run_until_already_processed_event(self, env):
        t = env.timeout(1.0, value="v")
        env.run()
        assert env.run(until=t) == "v"

    def test_clock_never_goes_backwards(self, env):
        stamps = []

        def proc(env, delays):
            for d in delays:
                yield env.timeout(d)
                stamps.append(env.now)

        env.process(proc(env, [3.0, 0.0, 2.0]))
        env.process(proc(env, [1.0, 1.0, 1.0]))
        env.run()
        assert stamps == sorted(stamps)

    def test_active_process_tracking(self, env):
        observed = []

        def proc(env):
            observed.append(env.active_process)
            yield env.timeout(1.0)

        p = env.process(proc(env))
        env.run()
        assert observed == [p]
        assert env.active_process is None

    def test_stale_stop_event_from_aborted_run_is_ignored(self, env):
        # Regression: if run(until=T) aborts on a crashed process, its stop
        # event must not terminate a later run early.
        def crasher(env):
            yield env.timeout(1.0)
            raise RuntimeError("boom")

        env.process(crasher(env))
        with pytest.raises(RuntimeError):
            env.run(until=1_000.0)
        assert env.now == 1.0
        env.run(until=2_000.0)
        assert env.now == 2_000.0

    def test_stale_stop_ignored_in_run_to_exhaustion(self, env):
        def crasher(env):
            yield env.timeout(1.0)
            raise RuntimeError("boom")

        env.process(crasher(env))
        with pytest.raises(RuntimeError):
            env.run(until=500.0)
        env.timeout(800.0)  # future work beyond the stale stop at 500
        env.run()
        assert env.now == 801.0  # 1.0 (crash time) + the 800 s timeout
