"""Unit tests for StateTimeline, Tally and TimeWeighted."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim import Environment, StateTimeline, Tally, TimeWeighted


def advance(env, dt):
    """Advance the clock by scheduling and consuming a timeout."""
    env.timeout(dt)
    env.run()


class TestStateTimeline:
    def test_durations_accumulate(self, env):
        tl = StateTimeline(env, "a")
        advance(env, 5.0)
        tl.set("b")
        advance(env, 3.0)
        tl.set("a")
        advance(env, 2.0)
        durations = tl.durations()
        assert durations["a"] == pytest.approx(7.0)
        assert durations["b"] == pytest.approx(3.0)

    def test_open_interval_included(self, env):
        tl = StateTimeline(env, "x")
        advance(env, 4.0)
        assert tl.durations()["x"] == pytest.approx(4.0)

    def test_transitions_counted_only_on_change(self, env):
        tl = StateTimeline(env, "a")
        tl.set("a")  # no change
        tl.set("b")
        tl.set("b")
        tl.set("c")
        assert tl.transitions == 2

    def test_history_recording(self, env):
        tl = StateTimeline(env, "a", record_history=True)
        advance(env, 1.0)
        tl.set("b")
        advance(env, 1.0)
        tl.set("c")
        assert tl.history == [(0.0, "a"), (1.0, "b"), (2.0, "c")]

    def test_history_disabled_by_default(self, env):
        assert StateTimeline(env, "a").history is None

    def test_weighted_total(self, env):
        tl = StateTimeline(env, "on")
        advance(env, 10.0)
        tl.set("off")
        advance(env, 5.0)
        assert tl.weighted_total({"on": 2.0, "off": 1.0}) == pytest.approx(25.0)

    def test_weighted_total_missing_state_raises(self, env):
        tl = StateTimeline(env, "on")
        advance(env, 1.0)
        with pytest.raises(KeyError):
            tl.weighted_total({})

    def test_durations_sum_to_total_time(self, env):
        tl = StateTimeline(env, 0)
        for i, dt in enumerate([1.5, 2.5, 0.0, 4.0]):
            advance(env, dt)
            tl.set(i % 2)
        assert sum(tl.durations().values()) == pytest.approx(tl.total_time())


class TestTally:
    def test_empty_stats_are_nan(self):
        t = Tally()
        assert math.isnan(t.mean)
        assert math.isnan(t.variance)
        assert math.isnan(t.minimum)
        assert t.count == 0

    def test_against_numpy(self, rng):
        data = rng.normal(10.0, 3.0, size=500)
        t = Tally()
        for x in data:
            t.add(x)
        assert t.count == 500
        assert t.mean == pytest.approx(np.mean(data))
        assert t.variance == pytest.approx(np.var(data, ddof=1))
        assert t.std == pytest.approx(np.std(data, ddof=1))
        assert t.minimum == pytest.approx(np.min(data))
        assert t.maximum == pytest.approx(np.max(data))
        assert t.total == pytest.approx(np.sum(data))

    def test_percentile_requires_samples(self):
        t = Tally()
        t.add(1.0)
        with pytest.raises(ValueError):
            t.percentile(0.5)

    def test_percentile_values(self):
        t = Tally(keep_samples=True)
        for x in range(1, 101):
            t.add(float(x))
        assert t.percentile(0.5) == 50.0
        assert t.percentile(0.95) == 95.0
        assert t.percentile(0.0) == 1.0
        assert t.percentile(1.0) == 100.0

    def test_percentile_bounds_checked(self):
        t = Tally(keep_samples=True)
        t.add(1.0)
        with pytest.raises(ValueError):
            t.percentile(1.5)

    def test_single_observation_variance_nan(self):
        t = Tally()
        t.add(5.0)
        assert math.isnan(t.variance)

    @given(st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=200))
    def test_mean_within_bounds_property(self, xs):
        t = Tally()
        for x in xs:
            t.add(x)
        assert min(xs) - 1e-6 <= t.mean <= max(xs) + 1e-6


class TestTimeWeighted:
    def test_average(self):
        env = Environment()
        tw = TimeWeighted(env, 2.0)
        advance(env, 10.0)
        tw.set(4.0)
        advance(env, 10.0)
        assert tw.average() == pytest.approx(3.0)
        assert tw.integral() == pytest.approx(60.0)

    def test_average_nan_with_no_time(self):
        env = Environment()
        tw = TimeWeighted(env, 1.0)
        assert math.isnan(tw.average())

    def test_value_property(self):
        env = Environment()
        tw = TimeWeighted(env, 1.0)
        tw.set(9.0)
        assert tw.value == 9.0
