"""Equivalence suite: the batched fast kernel vs the event kernel.

Every scenario is run through both engines via the public
``StorageConfig(engine=...)`` switch and compared on energy, response-time
distribution, spin counts, cache statistics and per-disk accounting.
Tolerances are far tighter than the 1e-6 acceptance bar: the only expected
differences are ~1 ulp float drift in the event loop's arrival-time
accumulation.
"""

import math

import numpy as np
import pytest

from repro.errors import ConfigError, SimulationError
from repro.sim.fastkernel import fast_unsupported_reason, simulate_fast
from repro.system import StorageConfig, StorageSystem, allocate
from repro.units import GiB, MB
from repro.workload import FileCatalog, RequestStream
from repro.workload.generator import SyntheticWorkloadParams, generate_workload
from repro.workload.mixed import MixedWorkloadParams, generate_mixed_workload


def run_both(catalog, stream, mapping, cfg, num_disks=None, duration=None):
    event = StorageSystem(
        catalog, mapping, cfg.with_overrides(engine="event"),
        num_disks=num_disks,
    ).run(stream, duration=duration)
    fast = StorageSystem(
        catalog, mapping, cfg.with_overrides(engine="fast"),
        num_disks=num_disks,
    ).run(stream, duration=duration)
    return event, fast


def assert_equivalent(event, fast):
    assert fast.num_disks == event.num_disks
    assert fast.duration == pytest.approx(event.duration)
    assert fast.arrivals == event.arrivals
    assert fast.completions == event.completions
    assert fast.spinups == event.spinups
    assert fast.spindowns == event.spindowns
    assert fast.energy == pytest.approx(event.energy, rel=1e-9)
    assert fast.always_on_energy == pytest.approx(
        event.always_on_energy, rel=1e-12
    )
    np.testing.assert_allclose(
        fast.energy_per_disk, event.energy_per_disk, rtol=1e-9, atol=1e-6
    )
    np.testing.assert_allclose(
        np.sort(fast.response_times),
        np.sort(event.response_times),
        rtol=1e-9,
        atol=1e-9,
    )
    assert np.array_equal(fast.requests_per_disk, event.requests_per_disk)
    assert np.array_equal(fast.spinups_per_disk, event.spinups_per_disk)
    for state, t in event.state_durations.items():
        assert fast.state_durations.get(state, 0.0) == pytest.approx(
            t, rel=1e-9, abs=1e-6
        )
    assert (fast.cache_stats is None) == (event.cache_stats is None)
    if event.cache_stats is not None:
        for field in ("hits", "misses", "insertions", "evictions", "rejected"):
            assert getattr(fast.cache_stats, field) == getattr(
                event.cache_stats, field
            ), field
        assert fast.cache_stats.bytes_hit == pytest.approx(
            event.cache_stats.bytes_hit
        )
        assert fast.cache_stats.bytes_missed == pytest.approx(
            event.cache_stats.bytes_missed
        )


@pytest.fixture(scope="module")
def fig2_workload():
    """A Figure 2-style seed point: Table 1 shapes at R=4."""
    return generate_workload(
        SyntheticWorkloadParams(
            n_files=3_000, arrival_rate=4.0, duration=600.0, seed=20090525
        )
    )


@pytest.fixture(scope="module")
def fig4_workload():
    """A Figure 4-style seed point: R=6 at a tight load constraint."""
    return generate_workload(
        SyntheticWorkloadParams(
            n_files=2_000, arrival_rate=6.0, duration=500.0, seed=20090525
        )
    )


class TestSeedScenarioEquivalence:
    def test_fig2_pack(self, fig2_workload):
        cfg = StorageConfig(num_disks=100, load_constraint=0.7)
        mapping = allocate(fig2_workload.catalog, "pack", cfg, 4.0).mapping(
            fig2_workload.catalog.n
        )
        event, fast = run_both(
            fig2_workload.catalog, fig2_workload.stream, mapping, cfg
        )
        assert_equivalent(event, fast)
        assert event.spinups > 0  # the scenario exercises spin transitions

    def test_fig2_random_baseline(self, fig2_workload):
        cfg = StorageConfig(num_disks=100)
        mapping = allocate(
            fig2_workload.catalog, "random", cfg, 4.0, rng=7, num_disks=100
        ).mapping(fig2_workload.catalog.n)
        event, fast = run_both(
            fig2_workload.catalog, fig2_workload.stream, mapping, cfg
        )
        assert_equivalent(event, fast)

    @pytest.mark.parametrize("load", [0.5, 0.9])
    def test_fig4_load_sweep(self, fig4_workload, load):
        cfg = StorageConfig(num_disks=100, load_constraint=load)
        mapping = allocate(fig4_workload.catalog, "pack", cfg, 6.0).mapping(
            fig4_workload.catalog.n
        )
        event, fast = run_both(
            fig4_workload.catalog, fig4_workload.stream, mapping, cfg
        )
        assert_equivalent(event, fast)

    @pytest.mark.parametrize(
        "threshold", [0.0, 2.0, 30.0, None, math.inf]
    )
    def test_threshold_grid(self, fig4_workload, threshold):
        cfg = StorageConfig(
            num_disks=100, load_constraint=0.7, idleness_threshold=threshold
        )
        mapping = allocate(fig4_workload.catalog, "pack", cfg, 6.0).mapping(
            fig4_workload.catalog.n
        )
        event, fast = run_both(
            fig4_workload.catalog, fig4_workload.stream, mapping, cfg
        )
        assert_equivalent(event, fast)

    def test_drain_horizon_beyond_stream(self, fig4_workload):
        cfg = StorageConfig(num_disks=100, load_constraint=0.7)
        mapping = allocate(fig4_workload.catalog, "pack", cfg, 6.0).mapping(
            fig4_workload.catalog.n
        )
        event, fast = run_both(
            fig4_workload.catalog,
            fig4_workload.stream,
            mapping,
            cfg,
            duration=fig4_workload.stream.duration + 150.0,
        )
        assert_equivalent(event, fast)


class TestEdgeCases:
    @pytest.fixture
    def one_file(self):
        return FileCatalog(
            sizes=np.array([72 * MB]), popularities=np.array([1.0])
        )

    def test_censored_completion(self):
        # One giant service crossing the cutoff: arrival counted, no
        # completion, partial SEEK/ACTIVE time billed identically.
        big = FileCatalog(
            sizes=np.array([7_200 * MB]), popularities=np.array([1.0])
        )
        stream = RequestStream(
            times=np.array([0.0]), file_ids=np.array([0]), duration=10.0
        )
        event, fast = run_both(
            big, stream, np.array([0]), StorageConfig(num_disks=1)
        )
        assert_equivalent(event, fast)
        assert fast.completions == 0
        assert fast.arrivals == 1

    def test_arrival_exactly_at_horizon_censored(self, one_file):
        stream = RequestStream(
            times=np.array([1.0, 10.0]),
            file_ids=np.array([0, 0]),
            duration=10.0,
        )
        event, fast = run_both(
            one_file, stream, np.array([0]), StorageConfig(num_disks=1)
        )
        assert_equivalent(event, fast)
        assert fast.arrivals == 1  # the t == duration request never runs

    def test_empty_stream_unused_disks_spin_down(self, one_file):
        stream = RequestStream(
            times=np.array([]), file_ids=np.array([]), duration=300.0
        )
        event, fast = run_both(
            one_file, stream, np.array([0]), StorageConfig(num_disks=5)
        )
        assert_equivalent(event, fast)
        assert fast.spindowns == 5

    def test_spinup_delay_observed_in_response(self, one_file, spec):
        # Second request arrives long after the first drained: it must pay
        # spin-up (15 s) + seek + transfer; the first pays seek + transfer.
        stream = RequestStream(
            times=np.array([0.0, 500.0]),
            file_ids=np.array([0, 0]),
            duration=600.0,
        )
        cfg = StorageConfig(num_disks=1)  # break-even threshold (53.3 s)
        event, fast = run_both(one_file, stream, np.array([0]), cfg)
        assert_equivalent(event, fast)
        service = spec.access_overhead + spec.transfer_time(72 * MB)
        np.testing.assert_allclose(
            np.sort(fast.response_times),
            np.sort([service, spec.spinup_time + service]),
            rtol=1e-12,
        )

    def test_arrival_during_spindown_waits_for_both_transitions(
        self, one_file, spec
    ):
        # Arrival 2 s into the (10 s, non-abortable) spin-down: service
        # waits for spin-down end + full spin-up.
        threshold = 20.0
        arrive = threshold + 2.0  # idle timer fired at t=20
        stream = RequestStream(
            times=np.array([arrive]), file_ids=np.array([0]), duration=200.0
        )
        cfg = StorageConfig(num_disks=1, idleness_threshold=threshold)
        event, fast = run_both(one_file, stream, np.array([0]), cfg)
        assert_equivalent(event, fast)
        wait = (threshold + spec.spindown_time - arrive) + spec.spinup_time
        service = spec.access_overhead + spec.transfer_time(72 * MB)
        assert fast.response_times[0] == pytest.approx(wait + service)


def mixed_scenario(
    catalog,
    write_fraction=0.3,
    new_file_fraction=0.5,
    rate=1.5,
    duration=1500.0,
    seed=11,
    num_disks=8,
    **cfg_overrides,
):
    """Build (extended catalog, stream, mapping, cfg) for a mixed run.

    Existing files are packed; files appended by the generator start
    unallocated (``-1``) so the §1.1 write-allocation path is exercised.
    """
    extended, stream = generate_mixed_workload(
        catalog,
        MixedWorkloadParams(
            write_fraction=write_fraction,
            new_file_fraction=new_file_fraction,
            arrival_rate=rate,
            duration=duration,
            seed=seed,
        ),
    )
    cfg = StorageConfig(
        num_disks=num_disks, load_constraint=0.7, **cfg_overrides
    )
    alloc = allocate(catalog, "pack", cfg, rate)
    mapping = np.concatenate(
        [
            alloc.mapping(catalog.n),
            np.full(extended.n - catalog.n, -1, dtype=np.int64),
        ]
    )
    return extended, stream, mapping, cfg


class TestMixedStreamEquivalence:
    """§1.1 write allocation on the fast path vs the event dispatcher."""

    @pytest.mark.parametrize("write_fraction", [0.1, 0.4])
    @pytest.mark.parametrize("threshold", [0.0, 30.0, None, math.inf])
    def test_mixed_grid(self, small_catalog, write_fraction, threshold):
        extended, stream, mapping, cfg = mixed_scenario(
            small_catalog,
            write_fraction=write_fraction,
            idleness_threshold=threshold,
        )
        event, fast = run_both(extended, stream, mapping, cfg)
        assert_equivalent(event, fast)
        assert event.arrivals > 0

    def test_writes_allocate_and_later_reads_follow(self, small_catalog):
        # High new-file fraction: mapping updates made by the §1.1 policy
        # must be visible to subsequent reads of the same file.
        extended, stream, mapping, cfg = mixed_scenario(
            small_catalog,
            write_fraction=0.5,
            new_file_fraction=0.9,
            rate=2.0,
            seed=29,
        )
        event, fast = run_both(extended, stream, mapping, cfg)
        assert_equivalent(event, fast)

    def test_standby_fallback_branch(self, small_catalog):
        # A tiny threshold keeps the pool asleep between sparse arrivals,
        # forcing writes through the worst-fit standby fallback.
        extended, stream, mapping, cfg = mixed_scenario(
            small_catalog,
            write_fraction=0.6,
            new_file_fraction=0.8,
            rate=0.05,
            duration=20_000.0,
            seed=5,
            idleness_threshold=1.0,
        )
        event, fast = run_both(extended, stream, mapping, cfg)
        assert_equivalent(event, fast)
        assert event.spinups > 0


class TestCachedEquivalence:
    """Shared whole-file cache on the fast path vs the event dispatcher."""

    @pytest.mark.parametrize("policy", ["lru", "lfu", "fifo", "clock"])
    def test_policy_grid(self, policy):
        workload = generate_workload(
            SyntheticWorkloadParams(
                n_files=800, arrival_rate=3.0, duration=800.0, seed=7
            )
        )
        cfg = StorageConfig(
            num_disks=30,
            load_constraint=0.7,
            cache_policy=policy,
            cache_capacity=4 * GiB,
            cache_hit_latency=0.05,
        )
        mapping = allocate(workload.catalog, "pack", cfg, 3.0).mapping(
            workload.catalog.n
        )
        event, fast = run_both(workload.catalog, workload.stream, mapping, cfg)
        assert_equivalent(event, fast)
        assert event.cache_stats.lookups > 0

    def test_small_cache_forces_evictions(self, small_catalog):
        # A cache barely larger than the hottest files: admissions evict
        # constantly, so eviction ordering must match the event kernel.
        stream = RequestStream.poisson(
            small_catalog.popularities, rate=2.0, duration=2_000.0, rng=13
        )
        cfg = StorageConfig(
            num_disks=6,
            load_constraint=0.7,
            cache_policy="lru",
            cache_capacity=3e9,
        )
        mapping = allocate(small_catalog, "pack", cfg, 2.0).mapping(
            small_catalog.n
        )
        event, fast = run_both(small_catalog, stream, mapping, cfg)
        assert_equivalent(event, fast)
        assert event.cache_stats.evictions > 0
        assert event.cache_stats.hits > 0

    @pytest.mark.parametrize("policy", ["lru", "clock"])
    def test_cached_mixed_grid(self, small_catalog, policy):
        extended, stream, mapping, cfg = mixed_scenario(
            small_catalog,
            write_fraction=0.2,
            new_file_fraction=0.6,
            rate=2.0,
            duration=1200.0,
            seed=23,
            cache_policy=policy,
            cache_capacity=6 * GiB,
        )
        event, fast = run_both(extended, stream, mapping, cfg)
        assert_equivalent(event, fast)
        assert event.cache_stats.hits > 0


class TestUnsupportedScenarios:
    def test_all_read_mixed_stream_supported(self, small_catalog):
        extended, stream = generate_mixed_workload(
            small_catalog,
            MixedWorkloadParams(
                write_fraction=0.0, arrival_rate=1.0, duration=100.0, seed=3
            ),
        )
        assert fast_unsupported_reason(
            StorageConfig(engine="fast"), stream
        ) is None

    def test_cache_configs_supported(self, small_catalog):
        # Narrowed since the global-merge pass: caches no longer fall back.
        stream = RequestStream(
            times=np.array([1.0]), file_ids=np.array([0]), duration=10.0
        )
        cfg = StorageConfig(engine="fast", cache_policy="lru")
        assert fast_unsupported_reason(cfg, stream) is None

    def test_write_streams_supported(self, small_catalog):
        extended, stream = generate_mixed_workload(
            small_catalog,
            MixedWorkloadParams(
                write_fraction=0.3, arrival_rate=1.0, duration=100.0, seed=3
            ),
        )
        assert fast_unsupported_reason(
            StorageConfig(engine="fast"), stream
        ) is None

    def test_non_array_stream_rejected(self):
        reason = fast_unsupported_reason(
            StorageConfig(engine="fast"), iter([(0.0, 1)])
        )
        assert "array-backed" in reason

    def test_out_of_order_times_raise(self, spec):
        # RequestStream validates ordering itself, so hand the kernel a raw
        # array-backed object; it must match drive_stream's SimulationError
        # instead of silently reordering the FIFO queues.
        class Raw:
            times = np.array([5.0, 3.0])
            file_ids = np.array([0, 0])
            duration = 10.0

        with pytest.raises(SimulationError, match="non-decreasing"):
            simulate_fast(
                sizes=np.array([MB]),
                mapping=np.array([0]),
                spec=spec,
                num_disks=1,
                threshold=50.0,
                stream=Raw(),
                duration=10.0,
            )

    def test_invalid_engine_name(self):
        with pytest.raises(ConfigError, match="engine"):
            StorageConfig(engine="turbo")

    def test_unallocated_read_raises(self, spec):
        catalog = FileCatalog(
            sizes=np.array([72 * MB]), popularities=np.array([1.0])
        )
        stream = RequestStream(
            times=np.array([1.0]), file_ids=np.array([0]), duration=10.0
        )
        with pytest.raises(SimulationError, match="unallocated"):
            simulate_fast(
                sizes=catalog.sizes,
                mapping=np.array([-1]),
                spec=spec,
                num_disks=1,
                threshold=50.0,
                stream=stream,
                duration=10.0,
            )

    def test_invalid_duration(self, spec):
        stream = RequestStream(
            times=np.array([]), file_ids=np.array([]), duration=10.0
        )
        with pytest.raises(ConfigError, match="duration"):
            simulate_fast(
                sizes=np.array([MB]),
                mapping=np.array([0]),
                spec=spec,
                num_disks=1,
                threshold=50.0,
                stream=stream,
                duration=0.0,
            )
