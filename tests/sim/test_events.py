"""Unit tests for the event types and process semantics."""

import pytest

from repro.errors import SimulationError
from repro.sim import AllOf, AnyOf, Environment, Interrupt


class TestEvent:
    def test_new_event_is_pending(self, env):
        ev = env.event()
        assert not ev.triggered
        assert not ev.processed

    def test_succeed_sets_value_after_processing(self, env):
        ev = env.event()
        ev.succeed(42)
        assert ev.triggered
        assert not ev.processed
        env.run()
        assert ev.processed
        assert ev.ok
        assert ev.value == 42

    def test_value_before_trigger_raises(self, env):
        ev = env.event()
        with pytest.raises(SimulationError):
            _ = ev.value
        with pytest.raises(SimulationError):
            _ = ev.ok

    def test_double_succeed_raises(self, env):
        ev = env.event()
        ev.succeed()
        with pytest.raises(SimulationError):
            ev.succeed()

    def test_fail_then_succeed_raises(self, env):
        ev = env.event()
        ev.fail(ValueError("x"))
        ev._defused = True
        with pytest.raises(SimulationError):
            ev.succeed()

    def test_fail_requires_exception(self, env):
        ev = env.event()
        with pytest.raises(TypeError):
            ev.fail("not an exception")

    def test_unhandled_failure_raises_from_run(self, env):
        ev = env.event()
        ev.fail(RuntimeError("boom"))
        with pytest.raises(RuntimeError, match="boom"):
            env.run()

    def test_callbacks_receive_event(self, env):
        ev = env.event()
        seen = []
        ev.callbacks.append(lambda e: seen.append(e))
        ev.succeed("v")
        env.run()
        assert seen == [ev]


class TestTimeout:
    def test_fires_at_delay(self, env):
        t = env.timeout(5.0, value="done")
        result = env.run(until=t)
        assert result == "done"
        assert env.now == 5.0

    def test_negative_delay_rejected(self, env):
        with pytest.raises(ValueError):
            env.timeout(-1.0)

    def test_zero_delay_fires_immediately(self, env):
        t = env.timeout(0.0)
        env.run(until=t)
        assert env.now == 0.0

    def test_pending_timeout_is_triggered_but_not_processed(self, env):
        # Regression guard: a Timeout is 'triggered' from construction but
        # must not count as having occurred (the Condition bug).
        t = env.timeout(10.0)
        assert t.triggered
        assert not t.processed


class TestProcess:
    def test_return_value_becomes_event_value(self, env):
        def proc(env):
            yield env.timeout(1.0)
            return "result"

        p = env.process(proc(env))
        assert env.run(until=p) == "result"

    def test_process_waits_on_timeouts(self, env):
        trace = []

        def proc(env):
            yield env.timeout(2.0)
            trace.append(env.now)
            yield env.timeout(3.0)
            trace.append(env.now)

        env.process(proc(env))
        env.run()
        assert trace == [2.0, 5.0]

    def test_processes_can_wait_on_each_other(self, env):
        def child(env):
            yield env.timeout(4.0)
            return 99

        def parent(env):
            value = yield env.process(child(env))
            return value + 1

        p = env.process(parent(env))
        assert env.run(until=p) == 100

    def test_yielding_non_event_kills_process(self, env):
        def proc(env):
            yield 42

        p = env.process(proc(env))
        with pytest.raises(SimulationError, match="non-event"):
            env.run()
        assert p.triggered
        assert not p._ok

    def test_exception_in_process_propagates_when_unwatched(self, env):
        def proc(env):
            yield env.timeout(1.0)
            raise ValueError("dead")

        env.process(proc(env))
        with pytest.raises(ValueError, match="dead"):
            env.run()

    def test_exception_catchable_by_waiting_process(self, env):
        def child(env):
            yield env.timeout(1.0)
            raise ValueError("dead")

        caught = []

        def parent(env):
            try:
                yield env.process(child(env))
            except ValueError as exc:
                caught.append(str(exc))

        env.process(parent(env))
        env.run()
        assert caught == ["dead"]

    def test_waiting_on_failed_event_throws_into_process(self, env):
        ev = env.event()
        caught = []

        def proc(env):
            try:
                yield ev
            except RuntimeError as exc:
                caught.append(str(exc))

        env.process(proc(env))
        ev.fail(RuntimeError("zap"))
        env.run()
        assert caught == ["zap"]

    def test_yield_already_processed_event_resumes_immediately(self, env):
        ev = env.event()
        ev.succeed("early")
        env.run()  # process the event
        got = []

        def proc(env):
            value = yield ev
            got.append((env.now, value))

        env.process(proc(env))
        env.run()
        assert got == [(0.0, "early")]

    def test_is_alive(self, env):
        def proc(env):
            yield env.timeout(1.0)

        p = env.process(proc(env))
        assert p.is_alive
        env.run()
        assert not p.is_alive

    def test_non_generator_rejected(self, env):
        with pytest.raises(TypeError):
            env.process(lambda: None)


class TestInterrupt:
    def test_interrupt_wakes_process_early(self, env):
        log = []

        def sleeper(env):
            try:
                yield env.timeout(100.0)
                log.append("slept")
            except Interrupt as i:
                log.append(("interrupted", env.now, i.cause))

        p = env.process(sleeper(env))

        def interrupter(env):
            yield env.timeout(3.0)
            p.interrupt(cause="wakeup")

        env.process(interrupter(env))
        env.run()
        assert log == [("interrupted", 3.0, "wakeup")]

    def test_interrupted_process_can_continue(self, env):
        log = []

        def sleeper(env):
            try:
                yield env.timeout(100.0)
            except Interrupt:
                pass
            yield env.timeout(1.0)
            log.append(env.now)

        p = env.process(sleeper(env))

        def interrupter(env):
            yield env.timeout(3.0)
            p.interrupt()

        env.process(interrupter(env))
        env.run()
        assert log == [4.0]

    def test_orphaned_timeout_does_not_double_resume(self, env):
        # After an interrupt, the original timeout must not resume the
        # process a second time when it eventually fires.
        resumes = []

        def sleeper(env):
            try:
                yield env.timeout(10.0)
                resumes.append("timeout")
            except Interrupt:
                resumes.append("interrupt")
            yield env.timeout(50.0)  # outlive the orphaned timeout
            resumes.append("end")

        p = env.process(sleeper(env))

        def interrupter(env):
            yield env.timeout(1.0)
            p.interrupt()

        env.process(interrupter(env))
        env.run()
        assert resumes == ["interrupt", "end"]

    def test_interrupting_dead_process_raises(self, env):
        def proc(env):
            yield env.timeout(1.0)

        p = env.process(proc(env))
        env.run()
        with pytest.raises(SimulationError):
            p.interrupt()

    def test_self_interrupt_rejected(self, env):
        errors = []

        def proc(env):
            try:
                env.process_handle.interrupt()
            except SimulationError as exc:
                errors.append(str(exc))
            yield env.timeout(1.0)

        # Pass the process handle via the env for the closure.
        gen = proc(env)
        env.process_handle = env.process(gen)
        env.run()
        assert len(errors) == 1

    def test_uncaught_interrupt_kills_process(self, env):
        def sleeper(env):
            yield env.timeout(100.0)

        p = env.process(sleeper(env))

        def interrupter(env):
            yield env.timeout(1.0)
            p.interrupt()

        env.process(interrupter(env))
        with pytest.raises(Interrupt):
            env.run()

    def test_interrupt_cause_accessor(self):
        assert Interrupt("why").cause == "why"
        assert Interrupt().cause is None


class TestConditions:
    def test_any_of_fires_on_first(self, env):
        t1 = env.timeout(5.0, value="fast")
        t2 = env.timeout(10.0, value="slow")
        cond = AnyOf(env, [t1, t2])
        result = env.run(until=cond)
        assert env.now == 5.0
        assert result == {t1: "fast"}

    def test_any_of_does_not_fire_early_for_pending_timeouts(self, env):
        # Regression: AnyOf over (fresh event, pending timeout) must wait.
        wake = env.event()
        timer = env.timeout(100.0)
        cond = AnyOf(env, [wake, timer])
        env.run(until=50.0)
        assert not cond.processed
        env.run(until=150.0)
        assert cond.processed
        assert timer in cond.value and wake not in cond.value

    def test_all_of_waits_for_all(self, env):
        t1 = env.timeout(5.0, value=1)
        t2 = env.timeout(10.0, value=2)
        cond = AllOf(env, [t1, t2])
        result = env.run(until=cond)
        assert env.now == 10.0
        assert result == {t1: 1, t2: 2}

    def test_empty_condition_succeeds_immediately(self, env):
        cond = AllOf(env, [])
        env.run(until=cond)
        assert cond.value == {}

    def test_condition_failure_propagates(self, env):
        ev = env.event()
        bad = env.event()
        cond = AnyOf(env, [ev, bad])
        bad.fail(RuntimeError("inner"))
        with pytest.raises(RuntimeError, match="inner"):
            env.run(until=cond)

    def test_late_failure_after_condition_settled_is_defused(self, env):
        fast = env.timeout(1.0)
        slow = env.event()
        cond = AnyOf(env, [fast, slow])
        env.run(until=cond)
        slow.fail(RuntimeError("late"))
        env.run(until=10.0)  # must not raise

    def test_condition_value_of_accessor(self, env):
        t = env.timeout(1.0, value="v")
        cond = AnyOf(env, [t])
        env.run(until=cond)
        assert cond.value.of(t) == "v"

    def test_cross_environment_condition_rejected(self, env):
        other = Environment()
        t = other.timeout(1.0)
        with pytest.raises(SimulationError):
            AnyOf(env, [t])

    def test_already_processed_event_counts(self, env):
        t = env.timeout(1.0, value="x")
        env.run(until=2.0)
        assert t.processed
        cond = AllOf(env, [t])
        env.run(until=cond)
        assert cond.value == {t: "x"}
