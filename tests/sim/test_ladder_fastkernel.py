"""Fast-kernel ladder coverage: the two_state preset must be *byte-identical*
to the pre-ladder simulator, deeper ladders must agree with the event
engine, and the threshold axis must steer the descent schedule."""

import math

import numpy as np
import pytest

from repro.disk.dpm import make_dpm_ladder
from repro.errors import ConfigError
from repro.sim.fastkernel import simulate_fast
from repro.system import StorageConfig, StorageSystem, allocate
from repro.workload.generator import SyntheticWorkloadParams, generate_workload

SPEC = StorageConfig().spec


@pytest.fixture(scope="module")
def sparse():
    """Sparse traffic over many disks: real descent/wake activity."""
    return generate_workload(
        SyntheticWorkloadParams(
            n_files=1_000, arrival_rate=1.0, duration=900.0, seed=23
        )
    )


def _mapping(workload, cfg):
    return allocate(workload.catalog, "pack", cfg, 1.0).mapping(
        workload.catalog.n
    )


class TestTwoStateByteIdentity:
    """Acceptance: dpm_ladder='two_state' + dpm_policy='fixed' reproduces
    the pre-ladder simulator bit for bit (both engines)."""

    @pytest.mark.parametrize("threshold", [None, 0.0, 20.0, math.inf])
    def test_fast_engine_bit_equal(self, sparse, threshold):
        cfg = StorageConfig(
            num_disks=40,
            load_constraint=0.6,
            idleness_threshold=threshold,
            engine="fast",
        )
        mapping = _mapping(sparse, cfg)
        plain = StorageSystem(sparse.catalog, mapping, cfg).run(sparse.stream)
        laddered = StorageSystem(
            sparse.catalog, mapping, cfg.with_overrides(dpm_ladder="two_state")
        ).run(sparse.stream)
        assert np.array_equal(laddered.response_times, plain.response_times)
        assert laddered.energy == plain.energy  # bit-for-bit
        assert np.array_equal(laddered.energy_per_disk, plain.energy_per_disk)
        assert laddered.spinups == plain.spinups
        assert laddered.spindowns == plain.spindowns
        assert np.array_equal(
            laddered.spinups_per_disk, plain.spinups_per_disk
        )
        # State residencies match value-for-value under the label mapping.
        rename = {
            "idle": "idle",
            "standby": "standby",
            "seek": "seek",
            "active": "active",
            "spinup": "wake:standby",
            "spindown": "down:standby",
        }
        for state, t in plain.state_durations.items():
            assert laddered.state_durations.get(rename[state.value], 0.0) == t

    def test_event_engine_bit_equal(self, sparse):
        cfg = StorageConfig(num_disks=40, load_constraint=0.6)
        mapping = _mapping(sparse, cfg)
        plain = StorageSystem(sparse.catalog, mapping, cfg).run(sparse.stream)
        laddered = StorageSystem(
            sparse.catalog, mapping, cfg.with_overrides(dpm_ladder="two_state")
        ).run(sparse.stream)
        assert np.array_equal(laddered.response_times, plain.response_times)
        assert laddered.energy == plain.energy
        assert laddered.spinups == plain.spinups

    def test_controlled_two_state_matches_classic_controlled(self, sparse):
        """Under a dynamic policy the controlled ladder bank's recursion is
        the controlled classic bank's, term for term."""
        cfg = StorageConfig(
            num_disks=40,
            load_constraint=0.6,
            dpm_policy="adaptive_timeout",
            control_interval=150.0,
            engine="fast",
        )
        mapping = _mapping(sparse, cfg)
        plain = StorageSystem(sparse.catalog, mapping, cfg).run(sparse.stream)
        laddered = StorageSystem(
            sparse.catalog, mapping, cfg.with_overrides(dpm_ladder="two_state")
        ).run(sparse.stream)
        assert np.array_equal(laddered.response_times, plain.response_times)
        assert laddered.energy == plain.energy
        assert (
            laddered.extra["dpm"]["thresholds"]
            == plain.extra["dpm"]["thresholds"]
        )


class TestLadderKernel:
    @pytest.mark.parametrize("ladder", ("nap", "drpm4"))
    @pytest.mark.parametrize("threshold", [None, 10.0, 120.0])
    def test_agrees_with_event_engine(self, sparse, ladder, threshold):
        cfg = StorageConfig(
            num_disks=40,
            load_constraint=0.6,
            dpm_ladder=ladder,
            idleness_threshold=threshold,
        )
        mapping = _mapping(sparse, cfg)
        event = StorageSystem(
            sparse.catalog, mapping, cfg.with_overrides(engine="event")
        ).run(sparse.stream)
        fast = StorageSystem(
            sparse.catalog, mapping, cfg.with_overrides(engine="fast")
        ).run(sparse.stream)
        assert fast.spinups == event.spinups
        assert fast.spindowns == event.spindowns
        assert fast.energy == pytest.approx(event.energy, rel=1e-9)
        np.testing.assert_allclose(
            np.sort(fast.response_times),
            np.sort(event.response_times),
            rtol=1e-9,
            atol=1e-9,
        )
        for state, t in event.state_durations.items():
            assert fast.state_durations.get(state, 0.0) == pytest.approx(
                t, rel=1e-9, abs=1e-6
            )
        assert event.spindowns > 0

    def test_intermediate_rungs_split_the_wake_cost(self, sparse):
        """The ladder's payoff: against the same first-descent threshold,
        drpm4 wakes mostly from cheap intermediate rungs, so it must beat
        the two-state drive on energy at equal-or-better mean response."""
        base = StorageConfig(num_disks=40, load_constraint=0.6, engine="fast")
        mapping = _mapping(sparse, base)
        ladder = make_dpm_ladder("drpm4", SPEC)
        th = ladder.base_threshold
        two = StorageSystem(
            sparse.catalog, mapping,
            base.with_overrides(idleness_threshold=th),
        ).run(sparse.stream)
        multi = StorageSystem(
            sparse.catalog, mapping,
            base.with_overrides(dpm_ladder="drpm4"),
        ).run(sparse.stream)
        assert multi.energy < two.energy
        assert multi.mean_response <= two.mean_response + 1e-9

    def test_threshold_scales_descent_schedule(self, sparse):
        """A larger first-descent threshold must not increase energy
        saving: the whole schedule relaxes with it."""
        base = StorageConfig(
            num_disks=40, load_constraint=0.6, dpm_ladder="nap", engine="fast"
        )
        mapping = _mapping(sparse, base)
        energies = []
        for th in (10.0, 60.0, 400.0):
            res = StorageSystem(
                sparse.catalog, mapping,
                base.with_overrides(idleness_threshold=th),
            ).run(sparse.stream)
            energies.append(res.energy)
        assert energies[0] < energies[-1]

    def test_inf_threshold_never_descends(self, sparse):
        cfg = StorageConfig(
            num_disks=40,
            load_constraint=0.6,
            dpm_ladder="drpm4",
            idleness_threshold=math.inf,
            engine="fast",
        )
        mapping = _mapping(sparse, cfg)
        res = StorageSystem(sparse.catalog, mapping, cfg).run(sparse.stream)
        assert res.spindowns == 0
        assert res.spinups == 0
        assert set(res.state_durations) <= {"idle", "seek", "active"}

    def test_unknown_ladder_rejected(self):
        with pytest.raises(ConfigError, match="ladder"):
            StorageConfig(dpm_ladder="bogus")

    def test_simulate_fast_accepts_ladder_directly(self, sparse):
        cfg = StorageConfig(num_disks=30, load_constraint=0.6)
        mapping = _mapping(sparse, cfg)
        ladder = make_dpm_ladder("nap", SPEC)
        res = simulate_fast(
            sizes=sparse.catalog.sizes,
            mapping=mapping,
            spec=cfg.spec,
            num_disks=max(cfg.num_disks, int(mapping.max()) + 1),
            threshold=ladder.base_threshold,
            stream=sparse.stream,
            duration=sparse.stream.duration,
            ladder=ladder,
        )
        assert res.spindowns > 0
        assert "nap" in res.state_durations
