"""Unit tests for Resource, PriorityResource and Store."""

import pytest

from repro.errors import SimulationError
from repro.sim import PriorityResource, Resource, Store


class TestResource:
    def test_capacity_validation(self, env):
        with pytest.raises(ValueError):
            Resource(env, capacity=0)

    def test_grant_within_capacity_is_immediate(self, env):
        res = Resource(env, capacity=2)
        granted = []

        def proc(env):
            req = res.request()
            yield req
            granted.append(env.now)

        env.process(proc(env))
        env.process(proc(env))
        env.run()
        assert granted == [0.0, 0.0]
        assert res.count == 2

    def test_fifo_queueing(self, env):
        res = Resource(env, capacity=1)
        order = []

        def holder(env):
            req = res.request()
            yield req
            yield env.timeout(5.0)
            res.release(req)

        def waiter(env, name, delay):
            yield env.timeout(delay)
            req = res.request()
            yield req
            order.append((name, env.now))
            res.release(req)

        env.process(holder(env))
        env.process(waiter(env, "a", 1.0))
        env.process(waiter(env, "b", 2.0))
        env.run()
        assert order == [("a", 5.0), ("b", 5.0)]

    def test_context_manager_releases(self, env):
        res = Resource(env, capacity=1)
        done = []

        def proc(env, name):
            with res.request() as req:
                yield req
                yield env.timeout(1.0)
                done.append((name, env.now))

        env.process(proc(env, "first"))
        env.process(proc(env, "second"))
        env.run()
        assert done == [("first", 1.0), ("second", 2.0)]

    def test_cancel_queued_request(self, env):
        res = Resource(env, capacity=1)
        holder_req = res.request()
        queued = res.request()
        queued.cancel()
        res.release(holder_req)
        third = res.request()
        env.run()
        assert not queued.triggered
        assert third.triggered

    def test_release_returns_release_event(self, env):
        res = Resource(env)
        req = res.request()
        rel = res.release(req)
        env.run()
        assert rel.processed


class TestPriorityResource:
    def test_priority_order(self, env):
        res = PriorityResource(env, capacity=1)
        order = []

        def holder(env):
            req = res.request(priority=0)
            yield req
            yield env.timeout(5.0)
            res.release(req)

        def waiter(env, name, prio, delay):
            yield env.timeout(delay)
            req = res.request(priority=prio)
            yield req
            order.append(name)
            res.release(req)

        env.process(holder(env))
        env.process(waiter(env, "low", 5, 1.0))
        env.process(waiter(env, "high", -5, 2.0))
        env.run()
        assert order == ["high", "low"]

    def test_fifo_within_priority(self, env):
        res = PriorityResource(env, capacity=1)
        order = []

        def holder(env):
            req = res.request()
            yield req
            yield env.timeout(5.0)
            res.release(req)

        def waiter(env, name, delay):
            yield env.timeout(delay)
            req = res.request(priority=1)
            yield req
            order.append(name)
            res.release(req)

        env.process(holder(env))
        env.process(waiter(env, "a", 1.0))
        env.process(waiter(env, "b", 2.0))
        env.run()
        assert order == ["a", "b"]


class TestStore:
    def test_put_get_fifo(self, env):
        store = Store(env)
        got = []

        def producer(env):
            for i in range(3):
                yield env.timeout(1.0)
                store.put(i)

        def consumer(env):
            for _ in range(3):
                item = yield store.get()
                got.append((item, env.now))

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert got == [(0, 1.0), (1, 2.0), (2, 3.0)]

    def test_get_blocks_until_put(self, env):
        store = Store(env)
        got = []

        def consumer(env):
            item = yield store.get()
            got.append((item, env.now))

        def producer(env):
            yield env.timeout(7.0)
            store.put("x")

        env.process(consumer(env))
        env.process(producer(env))
        env.run()
        assert got == [("x", 7.0)]

    def test_capacity_blocks_put(self, env):
        store = Store(env, capacity=1)
        log = []

        def producer(env):
            yield store.put("a")
            log.append(("a", env.now))
            yield store.put("b")
            log.append(("b", env.now))

        def consumer(env):
            yield env.timeout(5.0)
            item = yield store.get()
            log.append((f"got {item}", env.now))

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert log == [("a", 0.0), ("got a", 5.0), ("b", 5.0)]

    def test_cancelled_get_never_receives(self, env):
        store = Store(env)
        g1 = store.get()
        g1.cancel()
        g2 = store.get()
        store.put("only")
        env.run()
        assert not g1.triggered
        assert g2.value == "only"

    def test_cancel_fulfilled_get_raises(self, env):
        store = Store(env)
        store.put("x")
        g = store.get()
        with pytest.raises(SimulationError):
            g.cancel()

    def test_len_tracks_buffer(self, env):
        store = Store(env)
        store.put(1)
        store.put(2)
        assert len(store) == 2

    def test_invalid_capacity(self, env):
        with pytest.raises(ValueError):
            Store(env, capacity=0)
