"""Out-of-core fast kernel: chunked execution equals monolithic at
engineered pathological boundaries, error contracts, and engine routing."""

import math

import numpy as np
import pytest

from repro.disk.drive import READ, WRITE
from repro.disk.specs import ST3500630AS as SPEC
from repro.errors import ConfigError, SimulationError
from repro.sim.fastkernel import (
    fast_unsupported_reason,
    simulate_fast,
    simulate_fast_chunked,
)
from repro.system import StorageConfig, StorageSystem
from repro.workload.arrivals import RequestStream
from repro.workload.catalog import FileCatalog
from repro.workload.chunked import StreamChunk
from repro.workload.mixed import MixedRequestStream


def _assert_identical(a, b, note=""):
    assert np.array_equal(a.response_times, b.response_times), note
    assert np.array_equal(a.energy_per_disk, b.energy_per_disk), note
    assert np.array_equal(a.final_mapping, b.final_mapping), note
    assert np.array_equal(a.requests_per_disk, b.requests_per_disk), note
    assert a.state_durations == b.state_durations, note
    assert a.arrivals == b.arrivals and a.completions == b.completions, note
    assert a.spinups == b.spinups and a.spindowns == b.spindowns, note


class _ListStream:
    """Minimal ChunkedStream over a hand-built chunk list."""

    def __init__(self, chunks, duration):
        self._chunks = chunks
        self.duration = duration

    def iter_chunks(self):
        return iter(self._chunks)


SIZES = np.full(8, 50e6)
MAPPING = np.arange(8, dtype=np.int64) % 2


def _run(stream, duration, chunked=False, **kw):
    fn = simulate_fast_chunked if chunked else simulate_fast
    return fn(SIZES, MAPPING, SPEC, 2, 5.0, stream, duration, **kw)


class TestPathologicalBoundaries:
    """Chunk boundaries landed exactly on the events that matter."""

    def _stream(self):
        # Disk 0 gets arrivals at 0 and 40 with a 40 s idle gap (threshold
        # 5 s → spin-down mid-gap); disk 1 stays busy around the boundary.
        times = np.array([0.0, 1.0, 12.0, 40.0, 41.0, 90.0])
        ids = np.array([0, 1, 3, 2, 5, 7])
        return RequestStream(times=times, file_ids=ids, duration=120.0)

    @pytest.mark.parametrize("cut", [1, 2, 3, 4, 5])
    def test_every_split_point(self, cut):
        stream = self._stream()
        mono = _run(stream, 120.0)
        chunks = [
            StreamChunk(times=stream.times[:cut], file_ids=stream.file_ids[:cut]),
            StreamChunk(times=stream.times[cut:], file_ids=stream.file_ids[cut:]),
        ]
        chunk = _run(_ListStream(chunks, 120.0), 120.0, chunked=True)
        _assert_identical(mono, chunk, f"cut={cut}")

    def test_empty_chunks_are_transparent(self):
        stream = self._stream()
        mono = _run(stream, 120.0)
        empty = StreamChunk(times=np.empty(0), file_ids=np.empty(0, np.int64))
        chunks = [
            empty,
            StreamChunk(times=stream.times[:3], file_ids=stream.file_ids[:3]),
            empty,
            StreamChunk(times=stream.times[3:], file_ids=stream.file_ids[3:]),
            empty,
        ]
        chunk = _run(_ListStream(chunks, 120.0), 120.0, chunked=True)
        _assert_identical(mono, chunk)

    def test_boundary_on_control_interval_edge(self):
        """An arrival exactly at a control boundary, in its own chunk."""
        from repro.control.controller import ThresholdController
        from repro.control.policies import make_dpm_policy

        times = np.array([0.0, 10.0, 30.0, 30.0, 55.0])
        ids = np.array([0, 2, 1, 3, 4])
        stream = RequestStream(times=times, file_ids=ids, duration=90.0)

        def dpm():
            return ThresholdController(
                make_dpm_policy("adaptive_timeout"), interval=30.0,
                num_disks=2, base_threshold=5.0, spec=SPEC,
            )

        mono = _run(stream, 90.0, dpm=dpm())
        for cut in (2, 3, 4):
            chunks = [
                StreamChunk(times=times[:cut], file_ids=ids[:cut]),
                StreamChunk(times=times[cut:], file_ids=ids[cut:]),
            ]
            chunk = _run(_ListStream(chunks, 90.0), 90.0, chunked=True,
                         dpm=dpm())
            _assert_identical(mono, chunk, f"cut={cut}")
            assert chunk.extra["dpm"]["thresholds"] == mono.extra["dpm"]["thresholds"]

    def test_trailing_empty_intervals_finalize(self):
        """All arrivals in the first interval; later intervals are empty —
        finish() must still walk every boundary to dpm.finalize."""
        from repro.control.controller import ThresholdController
        from repro.control.policies import make_dpm_policy

        times = np.array([0.0, 2.0])
        ids = np.array([0, 1])
        stream = RequestStream(times=times, file_ids=ids, duration=200.0)

        def run(s, chunked):
            dpm = ThresholdController(
                make_dpm_policy("adaptive_timeout"), interval=40.0,
                num_disks=2, base_threshold=5.0, spec=SPEC,
            )
            fn = simulate_fast_chunked if chunked else simulate_fast
            return fn(SIZES, MAPPING, SPEC, 2, 5.0, s, 200.0, dpm=dpm)

        mono = run(stream, False)
        chunk = run(_ListStream(
            [StreamChunk(times=times, file_ids=ids)], 200.0), True)
        _assert_identical(mono, chunk)
        assert len(mono.extra["dpm"]["t_end"]) == 5  # 200/40 intervals
        assert chunk.extra["dpm"]["t_end"] == mono.extra["dpm"]["t_end"]

    def test_write_allocation_across_boundary(self):
        """A new file's first-touch write in chunk 1, re-read in chunk 2."""
        sizes = np.concatenate([SIZES, [70e6]])
        mapping = np.concatenate([MAPPING, [-1]])
        times = np.array([0.0, 5.0, 20.0, 45.0])
        ids = np.array([0, 8, 8, 8])
        kinds = np.array([READ, WRITE, READ, READ])
        stream = MixedRequestStream(
            times=times, file_ids=ids, kinds=kinds, duration=60.0
        )
        mono = simulate_fast(sizes, mapping, SPEC, 2, 5.0, stream, 60.0)
        for cut in (1, 2, 3):
            chunks = [
                StreamChunk(times[:cut], ids[:cut], kinds=kinds[:cut]),
                StreamChunk(times[cut:], ids[cut:], kinds=kinds[cut:]),
            ]
            chunk = simulate_fast_chunked(
                sizes, mapping, SPEC, 2, 5.0, _ListStream(chunks, 60.0), 60.0
            )
            _assert_identical(mono, chunk, f"cut={cut}")
            assert chunk.final_mapping[8] >= 0


class TestErrorContracts:
    def test_cross_chunk_monotonicity(self):
        chunks = [
            StreamChunk(times=[1.0, 5.0], file_ids=[0, 1]),
            StreamChunk(times=[4.0], file_ids=[2]),
        ]
        with pytest.raises(SimulationError, match="globally time-sorted"):
            _run(_ListStream(chunks, 10.0), 10.0, chunked=True)

    def test_within_chunk_monotonicity_keeps_old_message(self):
        class Raw:
            times = np.array([5.0, 3.0])
            file_ids = np.array([0, 1])
            duration = 10.0

        with pytest.raises(SimulationError, match="non-decreasing"):
            _run(Raw(), 10.0)

    def test_simulate_fast_rejects_chunked_stream(self):
        s = _ListStream([StreamChunk(times=[1.0], file_ids=[0])], 10.0)
        with pytest.raises(ConfigError, match="simulate_fast_chunked"):
            _run(s, 10.0)

    def test_chunked_rejects_array_stream(self):
        stream = RequestStream(times=[1.0], file_ids=[0], duration=10.0)
        with pytest.raises(ConfigError, match=r"iter_chunks"):
            _run(stream, 10.0, chunked=True)

    def test_chunked_duration_defaults_and_requires(self):
        s = _ListStream([StreamChunk(times=[1.0], file_ids=[0])], 50.0)
        r = simulate_fast_chunked(SIZES, MAPPING, SPEC, 2, 5.0, s, None)
        assert r.duration == 50.0
        s.duration = None
        with pytest.raises(ConfigError, match="duration"):
            simulate_fast_chunked(SIZES, MAPPING, SPEC, 2, 5.0, s, None)

    def test_bad_metrics_mode(self):
        stream = RequestStream(times=[1.0], file_ids=[0], duration=10.0)
        with pytest.raises(ConfigError, match="metrics_mode"):
            _run(stream, 10.0, metrics_mode="bounded")

    def test_unallocated_read_in_later_chunk(self):
        mapping = MAPPING.copy()
        mapping[7] = -1
        chunks = [
            StreamChunk(times=[1.0], file_ids=[0]),
            StreamChunk(times=[5.0], file_ids=[7]),
        ]
        with pytest.raises(SimulationError, match="unallocated"):
            simulate_fast_chunked(
                SIZES, mapping, SPEC, 2, 5.0, _ListStream(chunks, 10.0), 10.0
            )

    def test_unsupported_reason(self):
        assert fast_unsupported_reason(
            None, RequestStream(times=[1.0], file_ids=[0], duration=2.0)
        ) is None
        assert fast_unsupported_reason(
            None, _ListStream([], 10.0)
        ) is None

        class Opaque:
            pass

        reason = fast_unsupported_reason(None, Opaque())
        assert reason is not None and "array-backed" in reason


class TestStreamingMode:
    def test_streaming_summarizes_the_full_run(self):
        cat = FileCatalog(
            sizes=SIZES, popularities=np.full(8, 1 / 8)
        )
        stream = RequestStream.poisson(cat.popularities, 0.2, 2000.0, rng=1)
        full = _run(stream, 2000.0)
        streamed = _run(stream, 2000.0, metrics_mode="streaming")
        assert streamed.response_times is None
        stats = streamed.response_stats
        assert stats.count == full.completions
        assert stats.max == full.response_times.max()
        assert stats.min == full.response_times.min()
        assert streamed.mean_response == pytest.approx(
            full.response_times.mean(), rel=1e-12
        )
        assert np.array_equal(full.energy_per_disk, streamed.energy_per_disk)

    def test_zero_completion_streaming_run(self):
        # One arrival censored exactly at the horizon: 0 completions.
        stream = RequestStream(times=[10.0], file_ids=[0], duration=10.0)
        r = _run(stream, 10.0, metrics_mode="streaming")
        assert r.arrivals == 0 and r.completions == 0
        with pytest.warns(RuntimeWarning, match="no completed requests"):
            assert math.isnan(r.mean_response)


class TestStorageRouting:
    def _catalog(self):
        return FileCatalog(sizes=SIZES, popularities=np.full(8, 1 / 8))

    def test_chunk_size_config_routes_to_chunked(self):
        cat = self._catalog()
        stream = RequestStream.poisson(cat.popularities, 0.1, 800.0, rng=2)
        mono = StorageSystem(
            cat, MAPPING, StorageConfig(num_disks=2, engine="fast")
        ).run(stream)
        chunk = StorageSystem(
            cat, MAPPING,
            StorageConfig(num_disks=2, engine="fast", chunk_size=7),
        ).run(stream)
        _assert_identical(mono, chunk)

    def test_chunked_stream_accepted_by_both_engines(self):
        cat = self._catalog()
        parent = RequestStream.poisson(cat.popularities, 0.1, 800.0, rng=3)
        view = parent.chunks(11)
        fast = StorageSystem(
            cat, MAPPING, StorageConfig(num_disks=2, engine="fast")
        ).run(view)
        mono = StorageSystem(
            cat, MAPPING, StorageConfig(num_disks=2, engine="fast")
        ).run(parent)
        _assert_identical(mono, fast)
        event = StorageSystem(
            cat, MAPPING, StorageConfig(num_disks=2, engine="event")
        ).run(view, duration=parent.duration)
        assert event.arrivals == mono.arrivals
        assert event.completions == mono.completions
        np.testing.assert_allclose(
            np.sort(event.response_times), np.sort(mono.response_times),
            rtol=1e-9, atol=1e-9,
        )
