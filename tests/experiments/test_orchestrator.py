"""Tests for the parallel sweep orchestrator (SweepRunner)."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.experiments.orchestrator import (
    InlineWorkload,
    SimTask,
    SweepRunner,
    configure,
    default_cache_dir,
    default_runner,
    materialize_workload,
    task_fingerprint,
)
from repro.system import StorageConfig, run_policy
from repro.workload.generator import SyntheticWorkloadParams, generate_workload
from repro.workload.mixed import MixedRequestStream, MixedWorkloadParams, generate_mixed_workload

PARAMS = SyntheticWorkloadParams(
    n_files=400, arrival_rate=1.0, duration=200.0, seed=9
)
CFG = StorageConfig(num_disks=20, load_constraint=0.7)


def make_task(label="pack", rate=1.0, key=None, config=CFG, **kwargs):
    return SimTask(
        label=label,
        workload=PARAMS,
        config=config,
        policy="pack",
        arrival_rate=rate,
        num_disks=config.num_disks,
        key=key,
        **kwargs,
    )


class TestSimTask:
    def test_requires_exactly_one_of_policy_or_mapping(self):
        with pytest.raises(ConfigError):
            SimTask(label="x", workload=PARAMS, config=CFG)
        with pytest.raises(ConfigError):
            SimTask(
                label="x",
                workload=PARAMS,
                config=CFG,
                policy="pack",
                mapping=np.zeros(400, dtype=np.int64),
            )

    def test_fingerprint_sensitivity(self):
        base = make_task()
        assert task_fingerprint(base) == task_fingerprint(make_task())
        assert task_fingerprint(base) != task_fingerprint(
            make_task(config=CFG.with_overrides(load_constraint=0.8))
        )
        other_seed = SimTask(
            label="pack",
            workload=SyntheticWorkloadParams(
                n_files=400, arrival_rate=1.0, duration=200.0, seed=10
            ),
            config=CFG,
            policy="pack",
            arrival_rate=1.0,
            num_disks=CFG.num_disks,
        )
        assert task_fingerprint(base) != task_fingerprint(other_seed)


class TestSweepRunner:
    def test_matches_direct_simulation(self):
        runner = SweepRunner(max_workers=1)
        (result,) = runner.run([make_task()])
        workload = generate_workload(PARAMS)
        direct = run_policy(
            workload.catalog, workload.stream, "pack", CFG, arrival_rate=1.0
        )
        assert result.energy == pytest.approx(direct.energy, rel=1e-12)
        np.testing.assert_allclose(
            result.response_times, direct.response_times
        )
        assert result.extra["alloc_disks"] > 0

    def test_caching_across_batches(self):
        # Stats reset per run(): each call reports its own sweep, with the
        # per-run snapshots piling up on history.
        runner = SweepRunner(max_workers=1)
        first = runner.run([make_task()])
        assert runner.stats.executed == 1
        assert runner.stats.cached == 0
        second = runner.run([make_task()])
        assert runner.stats.executed == 0
        assert runner.stats.cached == 1
        assert runner.stats.memory_hits == 1
        assert first[0] is second[0]
        assert [s.executed for s in runner.history] == [1, 0]
        assert [s.cached for s in runner.history] == [0, 1]

    def test_dedup_within_batch(self):
        runner = SweepRunner(max_workers=1)
        a, b = runner.run([make_task(), make_task()])
        assert runner.stats.executed == 1
        assert runner.stats.deduplicated == 1
        assert a is b

    def test_disk_cache_survives_runner_lifetimes(self, tmp_path):
        warm = SweepRunner(max_workers=1, cache_dir=tmp_path)
        (first,) = warm.run([make_task()])
        cold = SweepRunner(max_workers=1, cache_dir=tmp_path)
        (second,) = cold.run([make_task()])
        assert cold.stats.executed == 0
        assert cold.stats.cached == 1
        assert second.energy == pytest.approx(first.energy, rel=1e-12)

    def test_corrupt_disk_cache_entry_treated_as_miss(self, tmp_path):
        # A truncated pickle (crashed writer) must not poison the sweep.
        runner = SweepRunner(max_workers=1, cache_dir=tmp_path)
        task = make_task()
        from repro.experiments.orchestrator import task_fingerprint

        key = task_fingerprint(runner._with_engine(task))
        (tmp_path / f"{key}.pkl").write_bytes(b"not a pickle")
        (result,) = runner.run([task])
        assert runner.stats.executed == 1  # recomputed, not crashed
        assert result.energy > 0
        # The rewritten entry is now loadable by a fresh runner.
        cold = SweepRunner(max_workers=1, cache_dir=tmp_path)
        cold.run([task])
        assert cold.stats.cached == 1

    def test_two_workers_match_serial(self):
        tasks = [
            make_task(label=f"pack R={r:g}", rate=r, key=r) for r in (0.5, 1.0)
        ]
        serial = SweepRunner(max_workers=1).run_map(tasks)
        parallel = SweepRunner(max_workers=2).run_map(tasks)
        assert set(serial) == set(parallel) == {0.5, 1.0}
        for key in serial:
            assert parallel[key].energy == pytest.approx(
                serial[key].energy, rel=1e-12
            )

    def test_mapping_task(self):
        workload = generate_workload(PARAMS)
        inline = InlineWorkload(
            sizes=workload.catalog.sizes,
            popularities=workload.catalog.popularities,
            times=workload.stream.times,
            file_ids=workload.stream.file_ids,
            duration=workload.stream.duration,
        )
        mapping = np.arange(workload.catalog.n) % 5
        task = SimTask(
            label="fixed",
            workload=inline,
            config=StorageConfig(num_disks=5),
            mapping=mapping,
            num_disks=5,
        )
        (result,) = SweepRunner(max_workers=1).run([task])
        assert result.algorithm == "fixed"
        assert result.num_disks == 5
        assert result.arrivals == len(workload.stream)

    def test_run_map_falls_back_to_index_keys(self):
        runner = SweepRunner(max_workers=1)
        by_key = runner.run_map([make_task(key=None)])
        assert set(by_key) == {0}


class TestEngineOverride:
    def test_engine_applied_when_supported(self):
        runner = SweepRunner(max_workers=1, engine="fast")
        assert runner._with_engine(make_task()).config.engine == "fast"

    def test_engine_applied_to_cache_configs(self):
        # The fast kernel covers shared caches since the global-merge pass,
        # so the override applies to cached grid points too.
        runner = SweepRunner(max_workers=1, engine="fast")
        cached_cfg = CFG.with_overrides(cache_policy="lru")
        task = make_task(config=cached_cfg)
        assert runner._with_engine(task).config.engine == "fast"

    def test_engine_left_alone_for_unknown_workload_types(self):
        runner = SweepRunner(max_workers=1, engine="fast")
        task = make_task()
        object.__setattr__(task, "workload", ("opaque", "spec"))
        assert runner._with_engine(task).config.engine == "event"

    def test_fast_engine_results_match_event(self):
        event = SweepRunner(max_workers=1, engine="event").run([make_task()])
        fast = SweepRunner(max_workers=1, engine="fast").run([make_task()])
        assert fast[0].energy == pytest.approx(event[0].energy, rel=1e-9)
        assert fast[0].completions == event[0].completions

    def test_fast_engine_matches_event_on_cached_points(self):
        cached = make_task(config=CFG.with_overrides(cache_policy="lru"))
        event = SweepRunner(max_workers=1, engine="event").run([cached])
        fast = SweepRunner(max_workers=1, engine="fast").run([cached])
        assert fast[0].energy == pytest.approx(event[0].energy, rel=1e-9)
        assert fast[0].completions == event[0].completions
        assert fast[0].cache_stats.hits == event[0].cache_stats.hits
        assert fast[0].cache_stats.misses == event[0].cache_stats.misses

    def test_invalid_engine_rejected(self):
        with pytest.raises(ConfigError):
            SweepRunner(engine="warp")


def _inline_workload(kinds=False, seed=9):
    workload = generate_workload(PARAMS)
    if not kinds:
        return InlineWorkload(
            sizes=workload.catalog.sizes,
            popularities=workload.catalog.popularities,
            times=workload.stream.times,
            file_ids=workload.stream.file_ids,
            duration=workload.stream.duration,
        )
    catalog, stream = generate_mixed_workload(
        workload.catalog,
        MixedWorkloadParams(
            write_fraction=0.3, arrival_rate=1.0, duration=200.0, seed=seed
        ),
    )
    return catalog, InlineWorkload(
        sizes=catalog.sizes,
        popularities=catalog.popularities,
        times=stream.times,
        file_ids=stream.file_ids,
        duration=stream.duration,
        kinds=stream.kinds,
    )


class TestSharedWorkloads:
    def test_parallel_inline_tasks_ship_workload_via_initializer(self):
        inline = _inline_workload()
        mapping = np.arange(inline.sizes.shape[0]) % 5
        tasks = [
            SimTask(
                label=f"d{duration:g}",
                workload=inline,
                config=StorageConfig(num_disks=5),
                mapping=mapping,
                num_disks=5,
                duration=duration,
                key=duration,
            )
            for duration in (120.0, 160.0, 200.0)
        ]
        serial = SweepRunner(max_workers=1).run_map(tasks)
        parallel = SweepRunner(max_workers=2).run_map(tasks)
        for key in serial:
            assert parallel[key].energy == pytest.approx(
                serial[key].energy, rel=1e-12
            )
            assert parallel[key].completions == serial[key].completions

    def test_fingerprints_unaffected_by_substitution(self):
        # The digest-reference substitution happens at submission time only;
        # a second (serial) runner must hit the same disk cache entries.
        inline = _inline_workload()
        mapping = np.arange(inline.sizes.shape[0]) % 5
        task = SimTask(
            label="fixed",
            workload=inline,
            config=StorageConfig(num_disks=5),
            mapping=mapping,
            num_disks=5,
        )
        other = SimTask(
            label="fixed2",
            workload=inline,
            config=StorageConfig(num_disks=5),
            mapping=mapping,
            num_disks=5,
        )
        import tempfile
        with tempfile.TemporaryDirectory() as tmp:
            warm = SweepRunner(max_workers=2, cache_dir=tmp)
            warm.run([task, other])
            assert warm.stats.executed == 2
            cold = SweepRunner(max_workers=1, cache_dir=tmp)
            cold.run([task, other])
            assert cold.stats.executed == 0
            assert cold.stats.cached == 2


class TestMixedInlineWorkload:
    def test_kinds_change_the_digest(self):
        plain = _inline_workload()
        _, mixed = _inline_workload(kinds=True)
        assert plain.content_digest() != mixed.content_digest()

    def test_materializes_as_mixed_stream(self):
        _, inline = _inline_workload(kinds=True)
        _, stream = materialize_workload(inline)
        assert isinstance(stream, MixedRequestStream)
        assert 0.0 < stream.write_fraction < 1.0

    def test_mixed_task_matches_on_both_engines(self):
        catalog, inline = _inline_workload(kinds=True)
        mapping = np.arange(catalog.n, dtype=np.int64) % 5
        # Files appended by the mixed generator start unallocated, so the
        # §1.1 write-allocation path runs on both engines.
        mapping[PARAMS.n_files:] = -1
        task = SimTask(
            label="mixed",
            workload=inline,
            config=StorageConfig(num_disks=5),
            mapping=mapping,
            num_disks=5,
            key="m",
        )
        event = SweepRunner(max_workers=1, engine="event").run([task])
        fast = SweepRunner(max_workers=1, engine="fast").run([task])
        assert fast[0].energy == pytest.approx(event[0].energy, rel=1e-9)
        assert fast[0].completions == event[0].completions
        assert fast[0].spinups == event[0].spinups


class TestDefaultCacheDir:
    def test_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_SWEEP_CACHE", str(tmp_path / "sweeps"))
        assert default_cache_dir() == tmp_path / "sweeps"

    @pytest.mark.parametrize("token", ["off", "OFF", "none", "0", ""])
    def test_env_disable_tokens(self, monkeypatch, token):
        monkeypatch.setenv("REPRO_SWEEP_CACHE", token)
        assert default_cache_dir() is None

    def test_xdg_fallback(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_SWEEP_CACHE", raising=False)
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path))
        assert default_cache_dir() == tmp_path / "repro" / "sweeps"


class TestDefaultRunner:
    def test_configure_replaces_shared_runner(self):
        before = default_runner()
        replaced = configure(max_workers=1)
        try:
            assert default_runner() is replaced
            assert replaced is not before
        finally:
            configure()  # restore an environment-default runner

    def test_shared_runner_uses_disk_backed_default_cache(self):
        runner = configure()
        try:
            # The test session pins REPRO_SWEEP_CACHE to a tmp dir (see
            # conftest), so the shared runner must pick that up.
            assert runner.cache_dir == default_cache_dir()
            assert runner.cache_dir is not None
        finally:
            configure()

    def test_configure_cache_dir_off(self):
        runner = configure(cache_dir=None)
        try:
            assert runner.cache_dir is None
        finally:
            configure()
