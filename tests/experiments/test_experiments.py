"""Smoke + shape tests for every experiment harness at miniature scale.

These run the same code paths as the full benchmarks with tiny grids, and
assert the *paper-shape* properties that survive downscaling (orderings and
signs rather than magnitudes).
"""

import pytest

from repro.experiments import (
    ablations,
    fig2_power_saving,
    fig3_response_ratio,
    fig4_tradeoff,
    fig5_idleness_power,
    fig6_idleness_response,
    groupsize_sweep,
    table1_workload,
    table2_disk,
)

# Shared tiny grids; the memoized sweeps make fig3/fig6 reuse fig2/fig5 runs.
RATES = (1.0, 6.0)
LOADS = (0.5, 0.8)
SWEEP_KW = dict(
    scale=0.05, seed=101, rates=RATES, loads=LOADS,
    num_disks=60, n_files=12_000,
)
THRESHOLDS = (0.1, 1.5)
TRACE_KW = dict(scale=0.03, seed=101, threshold_hours=THRESHOLDS)


class TestTables:
    def test_table2_reproduces_paper_rows(self):
        result = table2_disk.run()
        assert "53.3 secs" in result.tables["table2"]
        assert "Seagate ST3500630AS" in result.tables["table2"]
        assert any("53.3" in n for n in result.notes)

    def test_table1_structure(self):
        result = table1_workload.run(scale=0.02)
        assert "Table 1" in result.tables["table1"]
        assert "Zipf-like" in result.tables["table1"]


class TestRateSweepFigures:
    @pytest.fixture(scope="class")
    def fig2(self):
        return fig2_power_saving.run(**SWEEP_KW)

    def test_fig2_saving_positive_at_low_rate(self, fig2):
        bundle = fig2.bundles["power_saving"]
        for series in bundle.series.values():
            low_rate_saving = series.y[series.x.index(1.0)]
            assert low_rate_saving > 0.2

    def test_fig2_has_curve_per_load(self, fig2):
        assert set(fig2.bundles["power_saving"].series) == {
            "L=50%", "L=80%"
        }

    def test_fig3_reuses_sweep_and_reports_ratios(self, fig2):
        result = fig3_response_ratio.run(**SWEEP_KW)
        bundle = result.bundles["response_ratio"]
        ys = [y for s in bundle.series.values() for y in s.y]
        assert all(0.05 < y < 20 for y in ys)
        # Memoization: the expensive part was already computed for fig2.
        assert result.wall_seconds < 5.0

    def test_fig2_csv_export(self, fig2, tmp_path):
        paths = fig2.save_csv(tmp_path)
        assert len(paths) == 1
        assert paths[0].exists()


class TestFig4:
    def test_tradeoff_directions(self):
        result = fig4_tradeoff.run(
            scale=0.05, seed=101, rate=4.0, loads=(0.5, 0.9),
            num_disks=60, n_files=12_000,
        )
        bundle = result.bundles["tradeoff"]
        power = bundle.series["Power (W)"].y
        disks = result.bundles["disks"].series["pack_disks"].y
        # Higher L -> fewer disks and no more power.
        assert disks[1] <= disks[0]
        assert power[1] <= power[0] * 1.05
        # Analytic overlay present.
        assert "Power analytic (W)" in bundle.series


class TestTraceFigures:
    @pytest.fixture(scope="class")
    def fig5(self):
        return fig5_idleness_power.run(**TRACE_KW)

    def test_fig5_rnd_saving_falls_with_threshold(self, fig5):
        rnd = fig5.bundles["power_saving"].series["RND"]
        assert rnd.y[0] > rnd.y[-1]

    def test_fig5_pack_flatter_than_rnd(self, fig5):
        bundle = fig5.bundles["power_saving"]
        rnd = bundle.series["RND"]
        pack = bundle.series["Pack_Disk"]
        rnd_drop = rnd.y[0] - rnd.y[-1]
        pack_drop = pack.y[0] - pack.y[-1]
        assert pack_drop < rnd_drop

    def test_fig5_pack_beats_rnd_at_large_threshold(self, fig5):
        bundle = fig5.bundles["power_saving"]
        assert (
            bundle.series["Pack_Disk"].y[-1] > bundle.series["RND"].y[-1]
        )

    def test_fig6_reports_all_configs(self, fig5):
        result = fig6_idleness_response.run(**TRACE_KW)
        assert set(result.bundles["response"].series) == {
            "RND", "Pack_Disk", "Pack_Disk4", "RND+LRU", "Pack_Disk4+LRU",
        }
        assert result.wall_seconds < 5.0  # memoized


class TestGroupsizeSweep:
    def test_sweep_runs_and_reports(self):
        result = groupsize_sweep.run(
            scale=0.02, seed=101, group_sizes=(1, 4), threshold_hours=0.5
        )
        bundle = result.bundles["sweep"]
        assert bundle.series["power saving"].x == [1.0, 4.0]
        assert all(y > 0 for y in bundle.series["disks used"].y)


class TestAblations:
    def test_complexity_outputs_identical_and_timed(self):
        result = ablations.run_complexity(
            scale=1.0, seed=3, sizes=(200, 400)
        )
        assert any("bit-identical across sizes: True" in n for n in result.notes)
        runtime = result.bundles["runtime"]
        assert len(runtime.series["pack_disks (heap)"]) == 2

    def test_quality_table_contains_all_allocators(self):
        result = ablations.run_quality(scale=0.2, seed=3)
        table = result.tables["quality"]
        for name in ("pack_disks", "first_fit", "next_fit"):
            assert name in table
        assert any("satisfied" in n for n in result.notes)

    def test_correlation_ablation_runs(self):
        result = ablations.run_correlation(scale=0.03, seed=101, rate=4.0)
        saving = result.bundles["correlation"].series["saving"]
        assert len(saving) == 3

    def test_cache_policy_ablation(self):
        result = ablations.run_cache_policies(scale=0.02, seed=101)
        table = result.tables["cache"]
        for policy in ("(none)", "lru", "lfu", "fifo", "clock"):
            assert policy in table

    def test_segregation_ablation(self):
        result = ablations.run_segregation(scale=0.04, seed=101, rate=4.0)
        assert "pack_segregated" in result.tables["segregation"]


class TestExperimentResult:
    def test_to_text_includes_everything(self):
        result = table2_disk.run()
        text = result.to_text()
        assert "table2_disk" in text
        assert "notes:" in text
