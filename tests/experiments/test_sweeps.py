"""Unit tests for the shared sweep machinery behind the figure harnesses."""

import pytest

from repro.experiments.common import memoize_by_key, scaled_duration
from repro.experiments.rate_sweep import sweep_rates
from repro.experiments.trace_sweep import sweep_trace
from repro.errors import ConfigError


class TestMemoize:
    def test_caches_by_key(self):
        calls = []

        @memoize_by_key
        def expensive(key, value):
            calls.append(key)
            return value * 2

        assert expensive("a", 1) == 2
        assert expensive("a", 999) == 2  # cached; args ignored
        assert expensive("b", 3) == 6
        assert calls == ["a", "b"]


class TestScaledDuration:
    def test_scaling_and_floor(self):
        assert scaled_duration(4_000.0, 1.0) == 4_000.0
        assert scaled_duration(4_000.0, 0.5) == 2_000.0
        assert scaled_duration(4_000.0, 0.01) == 200.0  # floor

    def test_invalid_scale(self):
        with pytest.raises(ConfigError):
            scaled_duration(4_000.0, 0.0)
        with pytest.raises(ConfigError):
            scaled_duration(4_000.0, 1.5)


class TestRateSweep:
    def test_memoized_identity(self):
        kwargs = dict(
            rates=(1.0,), loads=(0.8,), scale=0.05, seed=55,
            num_disks=40, n_files=5_000,
        )
        first = sweep_rates(**kwargs)
        second = sweep_rates(**kwargs)
        assert first is second  # same object: no re-simulation

    def test_grid_is_complete(self):
        sweep = sweep_rates(
            rates=(1.0, 2.0), loads=(0.6, 0.8), scale=0.05, seed=56,
            num_disks=40, n_files=5_000,
        )
        assert set(sweep.random) == {1.0, 2.0}
        assert set(sweep.packed) == {
            (1.0, 0.6), (1.0, 0.8), (2.0, 0.6), (2.0, 0.8)
        }
        assert all(n > 0 for n in sweep.pack_disks_used.values())

    def test_random_baseline_shared_across_loads(self):
        sweep = sweep_rates(
            rates=(1.0,), loads=(0.6, 0.8), scale=0.05, seed=57,
            num_disks=40, n_files=5_000,
        )
        # One baseline run per rate, reused for every load.
        assert len(sweep.random) == 1


class TestTraceSweep:
    def test_unknown_config_rejected(self):
        with pytest.raises(KeyError, match="unknown config"):
            sweep_trace(configs=("WARP",), scale=0.02)

    def test_pool_shared_across_configs(self):
        sweep = sweep_trace(
            threshold_hours=(0.5,),
            configs=("RND", "Pack_Disk", "Pack_Disk4"),
            scale=0.02,
            seed=58,
        )
        pools = {
            res.num_disks for res in sweep.results.values()
        }
        assert pools == {sweep.num_disks}
