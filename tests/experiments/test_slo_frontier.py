"""Structure + acceptance tests for the SLO-frontier experiment."""

import numpy as np
import pytest

from repro.experiments import orchestrator, slo_frontier
from repro.errors import ConfigError


@pytest.fixture
def fast_runner():
    """Route the shared runner through the fast kernel for the test."""
    orchestrator.configure(engine="fast", cache_dir=None)
    yield
    orchestrator.configure()


class TestStructure:
    def test_smoke_tables_and_bundles(self, fast_runner):
        result = slo_frontier.run(
            scale=0.05, rates=(1.0,), slo_targets=(18.0,)
        )
        assert "R_1" in result.tables
        assert "R_1_plot" in result.tables
        assert "slo_feedback" in result.tables["R_1"]
        assert "SLO met" in result.tables["R_1"]
        bundle = result.bundles["R_1"]
        # One frontier point per grid entry: 3 statics + 2 adaptives + 1
        # feedback target.
        assert len(bundle.series) == 6
        assert any("SweepRunner" in n for n in result.notes)

    def test_dpm_policy_restriction(self, fast_runner):
        result = slo_frontier.run(
            scale=0.05, rates=(1.0,), dpm_policy="adaptive_timeout"
        )
        table = result.tables["R_1"]
        assert "adaptive_timeout" in table
        assert "slo_feedback" not in table
        assert "exponential_predictive" not in table

    def test_slo_target_restriction(self, fast_runner):
        result = slo_frontier.run(
            scale=0.05, rates=(1.0,), dpm_policy="slo_feedback",
            slo_target=18.0,
        )
        table = result.tables["R_1"]
        assert "p95<=18" in table
        assert "p95<=12" not in table

    def test_unknown_dpm_policy_rejected(self):
        with pytest.raises(ConfigError, match="dpm-policy"):
            slo_frontier.run(scale=0.05, dpm_policy="nope")

    def test_slo_target_without_feedback_grid_rejected(self):
        # --dpm-policy restrictions that exclude slo_feedback make
        # --slo-target meaningless; dropping it silently would misreport
        # what was swept.
        with pytest.raises(ConfigError, match="slo-target"):
            slo_frontier.run(
                scale=0.05, dpm_policy="adaptive_timeout", slo_target=18.0
            )


class TestAcceptance:
    def test_feedback_meets_target_the_static_grid_misses(self, fast_runner):
        """The PR's headline cell: at R=1, p95<=18 s, the feedback
        controller meets the target while every static threshold at
        equal-or-better power saving misses it — the static grid
        quantizes the frontier, the controller lands between its points.
        """
        rate, target = 1.0, 18.0
        result = slo_frontier.run(
            scale=0.25, rates=(rate,), slo_targets=(target,),
            dynamic_policies=(),
        )
        assert any("frontier demonstration" in n for n in result.notes)

        # Re-derive the comparison from the raw grid to pin the numbers.
        tasks = slo_frontier.build_tasks(
            scale=0.25,
            seed=20090607,
            rates=(rate,),
            static_thresholds=slo_frontier.DEFAULT_STATIC_THRESHOLDS,
            slo_targets=(target,),
            dynamic_policies=(),
            num_disks=100,
            load_constraint=0.6,
        )
        by_key = orchestrator.default_runner().run_map(tasks)
        fb = by_key[("slo_feedback", rate, None, target, None, None)]
        fb_saving = 1.0 - fb.normalized_power_cost
        assert fb.p95_response <= target
        statics = [
            by_key[("fixed", rate, th, None, None, None)]
            for th in slo_frontier.DEFAULT_STATIC_THRESHOLDS
        ]
        for res in statics:
            saving = 1.0 - res.normalized_power_cost
            # Equal-or-better saving implies a missed target...
            if saving >= fb_saving:
                assert res.p95_response > target
        # ...and some static does meet the target (the cell is contested,
        # not vacuous), just at strictly less power saving.
        meeting = [
            1.0 - res.normalized_power_cost
            for res in statics
            if res.p95_response <= target
        ]
        assert meeting and max(meeting) < fb_saving

    def test_ladder_beats_best_static_at_equal_p95(self, fast_runner):
        """The ladder acceptance cell: with --dpm-ladder drpm4, some
        ladder cell saves strictly more power than the best two-state
        static threshold among those with equal-or-better p95 — the
        intermediate rungs monetize medium-length gaps."""
        result = slo_frontier.run(
            scale=0.25,
            rates=(1.0,),
            slo_targets=(),
            dynamic_policies=(),
            dpm_ladder="drpm4",
        )
        assert any(
            "ladder frontier demonstration" in n for n in result.notes
        )
        # The ladder cells made it into the report table too.
        assert "[drpm4]" in result.tables["R_1"]

    def test_unknown_ladder_rejected(self):
        with pytest.raises(ConfigError, match="dpm-ladder"):
            slo_frontier.run(scale=0.05, dpm_ladder="nope")

    def test_slack_scheduler_dominates_scheduler_less_grid(
        self, fast_runner
    ):
        """The scheduler acceptance cell: with --scheduler slack_defer
        composed with the slo_feedback controller, the scheduled cell
        saves strictly more power than *every* scheduler-less cell at
        equal-or-better p95, while still meeting its SLO target — the
        scheduler trades slack the target permits for merged wake-ups
        the static grid cannot reach at any threshold.
        """
        rate, target = 1.0, 120.0
        params = (("max_hold", 100.0),)
        result = slo_frontier.run(
            scale=0.25, rates=(rate,), slo_targets=(target,),
            dynamic_policies=(), num_disks=50,
            scheduler="slack_defer", scheduler_params=params,
        )
        assert any(
            "scheduler frontier demonstration" in n for n in result.notes
        )
        assert "+slack_defer" in result.tables["R_1"]

        # Re-derive the domination from the raw grid to pin the numbers.
        tasks = slo_frontier.build_tasks(
            scale=0.25,
            seed=20090607,
            rates=(rate,),
            static_thresholds=slo_frontier.DEFAULT_STATIC_THRESHOLDS,
            slo_targets=(target,),
            dynamic_policies=(),
            num_disks=50,
            load_constraint=0.6,
            scheduler="slack_defer",
            scheduler_params=params,
        )
        by_key = orchestrator.default_runner().run_map(tasks)
        sched = by_key[
            ("slo_feedback", rate, None, target, None, "slack_defer")
        ]
        sched_saving = 1.0 - sched.normalized_power_cost
        assert sched.p95_response <= target
        plain = [
            by_key[("fixed", rate, th, None, None, None)]
            for th in slo_frontier.DEFAULT_STATIC_THRESHOLDS
        ] + [by_key[("slo_feedback", rate, None, target, None, None)]]
        # Every scheduler-less cell lands at equal-or-better p95, so all
        # of them are rivals — and the scheduled cell out-saves each one
        # strictly.  The comparison is not vacuous: the best rival saves
        # a nontrivial amount on its own.
        rival_savings = []
        for res in plain:
            assert res.p95_response <= sched.p95_response * 1.02 + 0.25
            rival_savings.append(1.0 - res.normalized_power_cost)
        assert max(rival_savings) > 0.05
        assert sched_saving > max(rival_savings) + 1e-9

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(ConfigError, match="scheduler"):
            slo_frontier.run(scale=0.05, scheduler="nope")

    def test_fifo_scheduler_axis_rejected(self):
        # fifo IS the scheduler-less baseline; duplicating the grid on it
        # would compare a cell against itself.
        with pytest.raises(ConfigError, match="scheduler-less baseline"):
            slo_frontier.run(scale=0.05, scheduler="fifo")

    def test_controlled_run_carries_traces(self, fast_runner):
        tasks = slo_frontier.build_tasks(
            scale=0.05,
            seed=20090607,
            rates=(1.0,),
            static_thresholds=(60.0,),
            slo_targets=(18.0,),
            dynamic_policies=(),
            num_disks=100,
            load_constraint=0.6,
        )
        by_key = orchestrator.default_runner().run_map(tasks)
        fb = by_key[("slo_feedback", 1.0, None, 18.0, None, None)]
        dpm = fb.extra["dpm"]
        assert dpm["policy"] == "slo_feedback"
        assert len(dpm["thresholds"]) == len(dpm["t_end"]) >= 2
        assert np.asarray(dpm["power"]).shape[1] == 100
        # Static grid points carry no control trace.
        assert "dpm" not in by_key[("fixed", 1.0, 60.0, None, None, None)].extra
