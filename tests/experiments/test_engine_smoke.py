"""Orchestrator engine-agreement smoke: one cached and one mixed point.

This is the quick cross-engine contract check CI runs as its own job: a
shared-cache sweep point and a mixed read/write sweep point, each executed
through :class:`~repro.experiments.orchestrator.SweepRunner` under both
engines, must agree on energy, response times, spin counts and cache hit
ratio within tolerance.  It is deliberately tiny (a few hundred requests)
so it finishes in seconds.
"""

import math

import numpy as np
import pytest

from repro.experiments.orchestrator import InlineWorkload, SimTask, SweepRunner
from repro.system import StorageConfig
from repro.units import GiB
from repro.workload.generator import SyntheticWorkloadParams, generate_workload
from repro.workload.mixed import MixedWorkloadParams, generate_mixed_workload

TOL = 1e-6


def both_engines(task):
    (event,) = SweepRunner(max_workers=1, engine="event").run([task])
    (fast,) = SweepRunner(max_workers=1, engine="fast").run([task])
    return event, fast


def assert_agreement(event, fast):
    assert fast.arrivals == event.arrivals
    assert fast.completions == event.completions
    assert fast.spinups == event.spinups
    assert fast.spindowns == event.spindowns
    assert fast.energy == pytest.approx(event.energy, rel=TOL)
    assert fast.mean_response == pytest.approx(event.mean_response, rel=TOL)
    assert fast.response_percentile(95) == pytest.approx(
        event.response_percentile(95), rel=TOL
    )
    if event.cache_stats is not None:
        assert fast.cache_stats.hits == event.cache_stats.hits
        ratio = event.cache_stats.hit_ratio
        if not math.isnan(ratio):
            assert fast.cache_stats.hit_ratio == pytest.approx(ratio, rel=TOL)


def test_cached_sweep_point_agrees_across_engines():
    task = SimTask(
        label="smoke cached",
        workload=SyntheticWorkloadParams(
            n_files=400, arrival_rate=1.5, duration=300.0, seed=17
        ),
        config=StorageConfig(
            num_disks=20,
            load_constraint=0.7,
            cache_policy="lru",
            cache_capacity=2 * GiB,
        ),
        policy="pack",
        arrival_rate=1.5,
        num_disks=20,
    )
    event, fast = both_engines(task)
    assert_agreement(event, fast)
    assert event.cache_stats.lookups > 0


def test_mixed_sweep_point_agrees_across_engines():
    base = generate_workload(
        SyntheticWorkloadParams(
            n_files=300, arrival_rate=1.0, duration=300.0, seed=19
        )
    )
    catalog, stream = generate_mixed_workload(
        base.catalog,
        MixedWorkloadParams(
            write_fraction=0.3,
            new_file_fraction=0.5,
            arrival_rate=1.5,
            duration=300.0,
            seed=19,
        ),
    )
    mapping = np.arange(catalog.n, dtype=np.int64) % 10
    mapping[base.catalog.n:] = -1  # new files allocate on first write
    task = SimTask(
        label="smoke mixed",
        workload=InlineWorkload(
            sizes=catalog.sizes,
            popularities=catalog.popularities,
            times=stream.times,
            file_ids=stream.file_ids,
            duration=stream.duration,
            kinds=stream.kinds,
        ),
        config=StorageConfig(num_disks=10, load_constraint=0.7),
        mapping=mapping,
        num_disks=10,
    )
    event, fast = both_engines(task)
    assert_agreement(event, fast)
    assert event.arrivals > 0
