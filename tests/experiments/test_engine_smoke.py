"""Orchestrator engine-agreement smoke: cached, mixed and placement grid.

This is the quick cross-engine contract check CI runs as its own job: a
shared-cache sweep point, a mixed read/write sweep point and — for every
policy in the write-placement registry — mixed points with and without a
cache, each executed through
:class:`~repro.experiments.orchestrator.SweepRunner` under both engines,
must agree on energy, response times, spin counts, cache hit ratio and the
final file->disk mapping.  It is deliberately tiny (a few hundred requests
per point) so it finishes in seconds.
"""

import math

import numpy as np
import pytest

from repro.experiments.orchestrator import InlineWorkload, SimTask, SweepRunner
from repro.system import StorageConfig, placement_policy_names
from repro.units import GiB
from repro.workload.generator import SyntheticWorkloadParams, generate_workload
from repro.workload.mixed import MixedWorkloadParams, generate_mixed_workload

TOL = 1e-6

#: The placement grid's bound: placement decisions must be byte-identical
#: across engines, so metric drift is down to the kernels' ~1 ulp float
#: noise — hold them to a far tighter bar than the generic smoke points.
PLACEMENT_TOL = 1e-9


def both_engines(task):
    (event,) = SweepRunner(max_workers=1, engine="event").run([task])
    (fast,) = SweepRunner(max_workers=1, engine="fast").run([task])
    return event, fast


def assert_agreement(event, fast, tol=TOL):
    assert fast.arrivals == event.arrivals
    assert fast.completions == event.completions
    assert fast.spinups == event.spinups
    assert fast.spindowns == event.spindowns
    assert fast.energy == pytest.approx(event.energy, rel=tol)
    assert fast.mean_response == pytest.approx(event.mean_response, rel=tol)
    assert fast.response_percentile(95) == pytest.approx(
        event.response_percentile(95), rel=tol
    )
    if event.cache_stats is not None:
        assert fast.cache_stats.hits == event.cache_stats.hits
        ratio = event.cache_stats.hit_ratio
        if not math.isnan(ratio):
            assert fast.cache_stats.hit_ratio == pytest.approx(ratio, rel=tol)


def test_cached_sweep_point_agrees_across_engines():
    task = SimTask(
        label="smoke cached",
        workload=SyntheticWorkloadParams(
            n_files=400, arrival_rate=1.5, duration=300.0, seed=17
        ),
        config=StorageConfig(
            num_disks=20,
            load_constraint=0.7,
            cache_policy="lru",
            cache_capacity=2 * GiB,
        ),
        policy="pack",
        arrival_rate=1.5,
        num_disks=20,
    )
    event, fast = both_engines(task)
    assert_agreement(event, fast)
    assert event.cache_stats.lookups > 0


def test_mixed_sweep_point_agrees_across_engines():
    base = generate_workload(
        SyntheticWorkloadParams(
            n_files=300, arrival_rate=1.0, duration=300.0, seed=19
        )
    )
    catalog, stream = generate_mixed_workload(
        base.catalog,
        MixedWorkloadParams(
            write_fraction=0.3,
            new_file_fraction=0.5,
            arrival_rate=1.5,
            duration=300.0,
            seed=19,
        ),
    )
    mapping = np.arange(catalog.n, dtype=np.int64) % 10
    mapping[base.catalog.n:] = -1  # new files allocate on first write
    task = SimTask(
        label="smoke mixed",
        workload=InlineWorkload(
            sizes=catalog.sizes,
            popularities=catalog.popularities,
            times=stream.times,
            file_ids=stream.file_ids,
            duration=stream.duration,
            kinds=stream.kinds,
        ),
        config=StorageConfig(num_disks=10, load_constraint=0.7),
        mapping=mapping,
        num_disks=10,
    )
    event, fast = both_engines(task)
    assert_agreement(event, fast)
    assert event.arrivals > 0


# -- the placement-policy agreement grid ---------------------------------------


def _mixed_fixture(seed):
    """A mixed read/write workload with new files left for the policy."""
    base = generate_workload(
        SyntheticWorkloadParams(
            n_files=250, arrival_rate=1.0, duration=400.0, seed=seed
        )
    )
    catalog, stream = generate_mixed_workload(
        base.catalog,
        MixedWorkloadParams(
            write_fraction=0.35,
            new_file_fraction=0.6,
            arrival_rate=1.5,
            duration=400.0,
            seed=seed,
        ),
    )
    mapping = np.arange(catalog.n, dtype=np.int64) % 8
    mapping[base.catalog.n:] = -1  # new files: the policy decides
    workload = InlineWorkload(
        sizes=catalog.sizes,
        popularities=catalog.popularities,
        times=stream.times,
        file_ids=stream.file_ids,
        duration=stream.duration,
        kinds=stream.kinds,
    )
    n_new = catalog.n - base.catalog.n
    return workload, mapping, n_new


@pytest.mark.parametrize("cache_policy", [None, "lru"])
@pytest.mark.parametrize("policy", placement_policy_names())
def test_every_placement_policy_agrees_across_engines(policy, cache_policy):
    """Iterates the registry, so future policies are covered automatically.

    Responses and energy must agree to 1e-9 and — the stronger claim —
    both engines must produce the *identical* final file->disk mapping,
    i.e. every single allocation decision matched.
    """
    workload, mapping, n_new = _mixed_fixture(seed=23)
    assert n_new > 0, "fixture must exercise policy allocations"
    task = SimTask(
        label=f"placement {policy} cache={cache_policy or 'off'}",
        workload=workload,
        config=StorageConfig(
            num_disks=8,
            load_constraint=0.7,
            write_policy=policy,
            cache_policy=cache_policy,
            cache_capacity=GiB,
        ),
        mapping=mapping,
        num_disks=8,
    )
    event, fast = both_engines(task)
    assert_agreement(event, fast, tol=PLACEMENT_TOL)
    ev_sorted = np.sort(event.response_times)
    fa_sorted = np.sort(fast.response_times)
    assert np.allclose(fa_sorted, ev_sorted, rtol=PLACEMENT_TOL, atol=1e-9)
    # Identical placement decisions: the post-run mappings match exactly,
    # and the policy actually allocated every new file that was written.
    assert event.final_mapping is not None
    assert fast.final_mapping is not None
    assert np.array_equal(fast.final_mapping, event.final_mapping)
    allocated_new = int(np.sum(event.final_mapping[-n_new:] >= 0))
    assert allocated_new > 0


def test_placement_policies_actually_differ():
    """Sanity: the grid is not vacuous — policies place files differently."""
    workload, mapping, _ = _mixed_fixture(seed=23)
    finals = {}
    for policy in placement_policy_names():
        task = SimTask(
            label=f"differ {policy}",
            workload=workload,
            config=StorageConfig(
                num_disks=8, load_constraint=0.7, write_policy=policy
            ),
            mapping=mapping,
            num_disks=8,
        )
        (res,) = SweepRunner(max_workers=1, engine="fast").run([task])
        finals[policy] = res.final_mapping
    distinct = {tuple(m.tolist()) for m in finals.values()}
    assert len(distinct) >= 3
