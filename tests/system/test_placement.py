"""Unit tests for the write-placement policy registry."""

import numpy as np
import pytest

from repro.errors import CapacityError, ConfigError
from repro.system.config import StorageConfig
from repro.system.placement import (
    DEFAULT_WRITE_POLICY,
    PLACEMENT_POLICIES,
    PlacementContext,
    WritePlacementPolicy,
    make_placement_policy,
    placement_policy_names,
    register_placement_policy,
    spinning_best_fit_choice,
)


def ctx(spinning, free, load=None, time=0.0):
    free = np.asarray(free, dtype=float)
    return PlacementContext(
        time=time,
        spinning=np.asarray(spinning, dtype=bool),
        free=free,
        load=(
            np.zeros_like(free)
            if load is None
            else np.asarray(load, dtype=float)
        ),
    )


def choose(name, context, size):
    policy = make_placement_policy(name)
    policy.reset(context.free.shape[0])
    return policy.choose(context, size)


class TestRegistry:
    def test_expected_policies_registered(self):
        names = placement_policy_names()
        assert names[0] == DEFAULT_WRITE_POLICY
        for required in (
            "spinning_best_fit",
            "spinning_worst_fit",
            "first_fit_spinning",
            "round_robin",
            "coldest_disk",
            "fullest_spinning",
            "hottest_spinning",
        ):
            assert required in names

    def test_make_by_name_and_passthrough(self):
        policy = make_placement_policy("round_robin")
        assert policy.name == "round_robin"
        assert make_placement_policy(policy) is policy
        assert make_placement_policy(None).name == DEFAULT_WRITE_POLICY

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigError, match="unknown write placement"):
            make_placement_policy("quantum_fit")

    def test_duplicate_registration_rejected(self):
        class Dup(WritePlacementPolicy):
            name = DEFAULT_WRITE_POLICY

        with pytest.raises(ConfigError, match="duplicate"):
            register_placement_policy(Dup)
        assert PLACEMENT_POLICIES[DEFAULT_WRITE_POLICY] is not Dup

    def test_config_validates_policy_name(self):
        cfg = StorageConfig(write_policy="coldest_disk")
        assert cfg.placement_policy().name == "coldest_disk"
        with pytest.raises(ConfigError, match="write placement"):
            StorageConfig(write_policy="nope")

    def test_config_returns_fresh_instances(self):
        cfg = StorageConfig(write_policy="round_robin")
        assert cfg.placement_policy() is not cfg.placement_policy()


class TestDecisions:
    """Each policy's rule on a hand-constructed pool.

    Pool: free = [10, 40, 25, 100], spinning = [T, T, F, F].
    """

    FREE = [10.0, 40.0, 25.0, 100.0]
    SPIN = [True, True, False, False]

    def test_spinning_best_fit(self):
        # Tightest spinning fit: disk 0 (10 free) for a 5-byte file.
        assert choose("spinning_best_fit", ctx(self.SPIN, self.FREE), 5) == 0
        # Too big for disk 0: disk 1 is the remaining spinning fit.
        assert choose("spinning_best_fit", ctx(self.SPIN, self.FREE), 20) == 1
        # No spinning disk fits: worst-fit fallback -> disk 3 (100 free).
        assert choose("spinning_best_fit", ctx(self.SPIN, self.FREE), 50) == 3
        assert spinning_best_fit_choice(
            np.array(self.SPIN), np.array(self.FREE), 50
        ) == 3

    def test_spinning_worst_fit(self):
        # Most room among spinning: disk 1 (40 free).
        assert choose("spinning_worst_fit", ctx(self.SPIN, self.FREE), 5) == 1
        # Fallback matches the paper's worst-fit standby rule.
        assert choose("spinning_worst_fit", ctx(self.SPIN, self.FREE), 50) == 3

    def test_first_fit_spinning(self):
        assert choose("first_fit_spinning", ctx(self.SPIN, self.FREE), 5) == 0
        assert choose("first_fit_spinning", ctx(self.SPIN, self.FREE), 20) == 1
        assert choose("first_fit_spinning", ctx(self.SPIN, self.FREE), 50) == 3

    def test_fullest_spinning_differs_only_on_fallback(self):
        # Spinning branch identical to spinning_best_fit...
        assert choose("fullest_spinning", ctx(self.SPIN, self.FREE), 5) == 0
        # ...but once no spinning disk fits, the fallback picks the
        # fullest feasible disk, not the emptiest one.
        free = [10.0, 15.0, 25.0, 100.0]
        assert choose("fullest_spinning", ctx(self.SPIN, free), 20) == 2
        assert choose("spinning_best_fit", ctx(self.SPIN, free), 20) == 3

    def test_coldest_disk_ignores_spin_state(self):
        load = [5.0, 1.0, 0.5, 3.0]
        assert choose("coldest_disk", ctx(self.SPIN, self.FREE, load), 5) == 2
        # Infeasible disks are excluded even when coldest.
        assert (
            choose("coldest_disk", ctx(self.SPIN, self.FREE, load), 30) == 1
        )

    def test_coldest_disk_tie_breaks_low_id(self):
        assert choose("coldest_disk", ctx(self.SPIN, self.FREE, None), 5) == 0

    def test_hottest_spinning_reads_the_heat_ledger(self):
        # Busiest *spinning* disk with room: disk 0 (load 5 > 1).
        load = [5.0, 1.0, 9.0, 3.0]
        assert (
            choose("hottest_spinning", ctx(self.SPIN, self.FREE, load), 5)
            == 0
        )
        # Disk 0 infeasible for 20 bytes: disk 1 is the hot spinning fit;
        # disk 2 (load 9) is hotter but in standby and must not win.
        assert (
            choose("hottest_spinning", ctx(self.SPIN, self.FREE, load), 20)
            == 1
        )
        # No spinning disk fits: §1.1 worst-fit standby fallback (disk 3),
        # not the hottest standby disk.
        assert (
            choose("hottest_spinning", ctx(self.SPIN, self.FREE, load), 50)
            == 3
        )

    def test_hottest_spinning_tie_breaks_low_id(self):
        assert (
            choose("hottest_spinning", ctx(self.SPIN, self.FREE, None), 5)
            == 0
        )

    def test_round_robin_cursor_advances_and_skips_full_disks(self):
        policy = make_placement_policy("round_robin")
        policy.reset(4)
        picks = [policy.choose(ctx(self.SPIN, self.FREE), 20.0) for _ in range(4)]
        # Disk 0 (10 free) never fits a 20-byte file; cursor cycles 1,2,3.
        assert picks == [1, 2, 3, 1]
        policy.reset(4)
        assert policy.choose(ctx(self.SPIN, self.FREE), 5.0) == 0

    def test_all_policies_raise_on_no_room(self):
        for name in placement_policy_names():
            with pytest.raises(CapacityError):
                choose(name, ctx(self.SPIN, self.FREE), 1_000.0)

    def test_all_policies_never_pick_infeasible_disk(self):
        rng = np.random.default_rng(5)
        for name in placement_policy_names():
            policy = make_placement_policy(name)
            policy.reset(6)
            for _ in range(25):
                free = rng.uniform(0, 100, size=6)
                spinning = rng.uniform(size=6) < 0.5
                load = rng.uniform(0, 10, size=6)
                size = rng.uniform(0, 60)
                try:
                    disk = policy.choose(ctx(spinning, free, load), size)
                except CapacityError:
                    assert not np.any(free >= size)
                    continue
                assert free[disk] >= size
