"""Unit tests for the request-scheduler registry (`repro.system.scheduling`).

Covers registry wiring, parameter normalization/validation, the private
disk model, each registered strategy's release rule, the fifo
byte-identity pins (config-level *and* forced through the scheduling
machinery), and a deterministic release-on-control-boundary tie that the
randomized differential axis cannot hit (float intervals make exact ties
measure-zero there).
"""

import math

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.system import StorageConfig, StorageSystem
from repro.system.scheduling import (
    DEFAULT_SCHEDULER,
    BatchRelease,
    Fifo,
    SchedulingSetup,
    SlackDefer,
    SpinupCoalesce,
    _DiskModel,
    build_scheduling_setup,
    make_request_scheduler,
    normalize_scheduler_params,
    request_scheduler_names,
)
from repro.workload.generator import SyntheticWorkloadParams, generate_workload


def _setup(
    num_disks=1,
    mapping=(0,),
    sizes=(1.0,),
    oh=0.0,
    rate=1.0,
    th=5.0,
    down=2.0,
    up=3.0,
    slo_target=None,
):
    n = num_disks
    return SchedulingSetup(
        num_disks=n,
        mapping=np.asarray(mapping, dtype=np.int64),
        sizes=np.asarray(sizes, dtype=float),
        access_overhead=np.full(n, float(oh)),
        transfer_rate=np.full(n, float(rate)),
        threshold=np.full(n, float(th)),
        spindown_time=np.full(n, float(down)),
        spinup_time=np.full(n, float(up)),
        slo_target=slo_target,
        slo_percentile=95.0,
    )


# -- registry -------------------------------------------------------------------


def test_registry_names_default_first():
    names = request_scheduler_names()
    assert names[0] == DEFAULT_SCHEDULER == "fifo"
    assert set(names) == {"fifo", "slack_defer", "batch_release", "spinup_coalesce"}


def test_make_by_name_and_instance_passthrough():
    assert isinstance(make_request_scheduler("slack_defer"), SlackDefer)
    assert isinstance(make_request_scheduler(None), Fifo)
    ready = BatchRelease(window=4.0)
    assert make_request_scheduler(ready) is ready
    with pytest.raises(ConfigError, match="ready RequestScheduler"):
        make_request_scheduler(ready, {"window": 5.0})


def test_unknown_name_and_unknown_param_rejected():
    with pytest.raises(ConfigError, match="unknown request scheduler"):
        make_request_scheduler("edf")
    with pytest.raises(ConfigError, match="unknown params"):
        make_request_scheduler("batch_release", {"slack": 1.0})


# -- params normalization -------------------------------------------------------


def test_normalize_dict_and_pairs_agree():
    want = (("max_hold", 9.0), ("window", 4.0))
    assert normalize_scheduler_params({"window": 4, "max_hold": 9}) == want
    assert normalize_scheduler_params([("window", 4.0), ("max_hold", 9)]) == want
    assert normalize_scheduler_params(None) == ()
    assert normalize_scheduler_params(()) == ()


@pytest.mark.parametrize(
    "bad",
    [
        {"window": True},          # bool is not a numeric param
        {"window": "big"},
        {4: 1.0},
        [("window",)],             # malformed pair
        [("window", 1.0, 2.0)],
        "window=4",
        [("window", 1.0), ("window", 2.0)],  # duplicate
    ],
)
def test_normalize_rejects_malformed(bad):
    with pytest.raises(ConfigError):
        normalize_scheduler_params(bad)


# -- config round-trip ----------------------------------------------------------


def test_config_normalizes_and_instantiates():
    cfg = StorageConfig(
        num_disks=2,
        scheduler="slack_defer",
        scheduler_params={"target": 20, "margin": 0.5},
    )
    assert cfg.scheduler_params == (("margin", 0.5), ("target", 20.0))
    sched = cfg.request_scheduler()
    assert isinstance(sched, SlackDefer)
    assert sched.params["target"] == 20.0


def test_config_fifo_routes_to_unscheduled_path():
    assert StorageConfig(num_disks=2).request_scheduler() is None
    cfg = StorageConfig(num_disks=2, scheduler="fifo", scheduler_params=())
    assert cfg.request_scheduler() is None


def test_config_rejects_bad_scheduler_at_construction():
    with pytest.raises(ConfigError):
        StorageConfig(num_disks=2, scheduler="edf")
    with pytest.raises(ConfigError):
        StorageConfig(
            num_disks=2, scheduler="batch_release",
            scheduler_params={"slack": 1.0},
        )


def test_build_setup_uniform_and_fleet():
    sizes = np.array([10.0, 20.0])
    mapping = np.array([0, 1], dtype=np.int64)
    cfg = StorageConfig(num_disks=2, idleness_threshold=7.0)
    s = build_scheduling_setup(cfg, sizes, mapping, 2)
    assert s.num_disks == 2
    assert np.all(s.threshold == 7.0)
    assert np.all(s.transfer_rate == float(cfg.spec.transfer_rate))
    # The setup's mapping is a private copy, not a view.
    s.mapping[0] = 99
    assert mapping[0] == 0
    cfg_f = StorageConfig(num_disks=2, fleet="mixed_generation")
    sf = build_scheduling_setup(cfg_f, sizes, mapping, 2)
    fleet = cfg_f.resolved_fleet(2)
    assert np.array_equal(sf.transfer_rate, fleet.transfer_rates)
    assert np.array_equal(sf.spinup_time, fleet.spinup_times)


# -- the private disk model -----------------------------------------------------


def test_disk_model_projection_states():
    m = _DiskModel(_setup())  # oh=0 rate=1 th=5 down=2 up=3, avail=0
    # Within the idle threshold: starts immediately.
    assert m.projected_start(0, 4.0) == 4.0
    # Past threshold + spin-down: fully asleep, pay the wake.
    assert m.sleeping(0, 7.0) and not m.sleeping(0, 6.9)
    assert m.projected_start(0, 10.0) == 13.0
    # Mid-spin-down (threshold crossed, heads not yet parked): the
    # descent must drain before the wake starts.
    assert m.projected_start(0, 6.0) == 7.0 + 3.0
    # Busy disk: queue behind the backlog.
    m.commit(0, 4.0, 2.0)  # starts at 4, service 2 -> avail 6
    assert m.avail[0] == 6.0
    assert m.projected_start(0, 5.0) == 6.0
    assert m.service_time(0, 2.5) == 2.5


def test_slack_defer_batches_onto_epochs_and_respects_stress():
    # th=20 keeps the disk awake across the holds below.
    awake = dict(sizes=(1.0,), th=20.0)
    s = SlackDefer(target=10.0, margin=1.0, max_hold=100.0)
    s.reset(_setup(**awake))
    # Idle disk at t=2: released at the epoch (the grid defaults to the
    # budget, 10), projected response 8 + 1 <= budget.
    assert s.release(2.0, 0, "read") == 10.0
    # On-epoch arrivals pass through (the batch is *now*).
    s.reset(_setup(**awake))
    assert s.release(10.0, 0, "read") == 10.0
    # Too close to the previous epoch: the projected response at the next
    # one (9.5 + 1) busts the budget, so the request passes through.
    s.reset(_setup(**awake))
    assert s.release(0.5, 0, "read") == 0.5
    # A deferral that would *cause* a wake is refused: with th=5 the disk
    # sleeps inside [2, 10), so releasing at 10 pays descent+wake
    # (start 10 at sd_end 7... wake to 13) -> 11 + 1 > budget.
    s.reset(_setup(sizes=(1.0,), th=5.0))
    assert s.release(2.0, 0, "read") == 2.0
    # NaN estimate (estimator not warmed up) is not stress.
    s.reset(_setup(**awake))
    assert s.release(2.0, 0, "read", slo_estimate=float("nan")) == 10.0
    # A live estimate above budget pins the request to its arrival.
    s.reset(_setup(**awake))
    assert s.release(2.0, 0, "read", slo_estimate=11.0) == 2.0
    # An epoch farther than max_hold away means pass-through, not a
    # truncated mid-window shift.
    tight = SlackDefer(target=10.0, margin=1.0, max_hold=2.0)
    tight.reset(_setup(**awake))
    assert tight.release(2.0, 0, "read") == 2.0
    tight.reset(_setup(**awake))
    assert tight.release(8.5, 0, "read") == 10.0  # epoch within reach
    # An explicit window overrides the budget-sized grid.
    fine = SlackDefer(target=10.0, margin=1.0, window=4.0)
    fine.reset(_setup(**awake))
    assert fine.release(2.0, 0, "read") == 4.0
    # Unplaced file passes through and leaves the model untouched.
    s2 = SlackDefer(target=10.0)
    s2.reset(_setup(mapping=(-1,)))
    assert s2.release(3.0, 0, "read") == 3.0
    assert s2._model.avail[0] == 0.0


def test_slack_defer_validation():
    with pytest.raises(ConfigError, match="positive response-time target"):
        SlackDefer().reset(_setup(slo_target=None))
    # Falls back to the run's slo_target when the param is unset, and
    # the epoch grid falls back to the budget.
    s = SlackDefer()
    s.reset(_setup(slo_target=25.0))
    assert s._budget == pytest.approx(0.8 * 25.0)
    assert s._window == s._budget
    with pytest.raises(ConfigError, match="margin"):
        SlackDefer(target=10.0, margin=1.5).reset(_setup())
    with pytest.raises(ConfigError, match="max_hold"):
        SlackDefer(target=10.0, max_hold=-1.0).reset(_setup())
    with pytest.raises(ConfigError, match="window"):
        SlackDefer(target=10.0, window=0.0).reset(_setup())


def test_batch_release_quantizes_onto_epochs():
    b = BatchRelease(window=10.0, max_hold=30.0)
    b.reset(_setup())
    assert b.release(3.0, 0, "read") == 10.0
    assert b.release(10.0, 0, "read") == 10.0  # on-epoch: no hold
    assert b.release(10.1, 0, "read") == 20.0
    capped = BatchRelease(window=10.0, max_hold=5.0)
    capped.reset(_setup())
    assert capped.release(12.0, 0, "read") == 17.0
    with pytest.raises(ConfigError, match="window"):
        BatchRelease(window=0.0).reset(_setup())


def test_spinup_coalesce_groups_wakes():
    c = SpinupCoalesce(max_hold=45.0)
    c.reset(_setup(mapping=(0, 0), sizes=(1.0, 1.0)))
    # avail=0, th=5, down=2: asleep from t=7.  First sleeper opens the
    # group at its deadline; later arrivals join it.
    assert c.release(10.0, 0, "read") == 55.0
    assert c.release(12.0, 1, "read") == 55.0
    # After both commits the model is busy until 60 (58+1, then +1), so
    # an arrival after the group released finds the disk spinning.
    assert c._model.avail[0] == 60.0
    assert c.release(61.0, 0, "read") == 61.0
    # Once the disk drifts back to sleep (60 + th + down = 67), a new
    # group opens.
    c2 = SpinupCoalesce(max_hold=45.0)
    c2.reset(_setup())
    c2._model.avail[0] = 60.0
    c2._group_until[0] = 55.0  # stale, already released
    assert c2.release(70.0, 0, "read") == 115.0


def test_fifo_releases_at_arrival():
    f = Fifo()
    f.reset(_setup())
    assert f.release(3.25, 0, "read") == 3.25


# -- fifo byte-identity pins ----------------------------------------------------


def _small_run(seed=7):
    wl = generate_workload(
        SyntheticWorkloadParams(
            n_files=200, arrival_rate=0.8, duration=260.0, seed=seed
        )
    )
    cfg = StorageConfig(
        num_disks=10,
        load_constraint=0.6,
        cache_policy="lru",
        dpm_policy="slo_feedback",
        slo_target=25.0,
        control_interval=60.0,
    )
    mapping = (
        np.random.default_rng(seed)
        .integers(0, cfg.num_disks, size=wl.catalog.n)
        .astype(np.int64)
    )
    return wl, cfg, mapping


def _assert_bit_identical(a, b, note):
    assert np.array_equal(a.response_times, b.response_times), note
    assert np.array_equal(a.energy_per_disk, b.energy_per_disk), note
    assert a.energy == b.energy, note
    assert np.array_equal(a.requests_per_disk, b.requests_per_disk), note
    assert a.state_durations == b.state_durations, note
    assert (a.arrivals, a.completions, a.spinups, a.spindowns) == (
        b.arrivals, b.completions, b.spinups, b.spindowns
    ), note


@pytest.mark.parametrize("engine", ["event", "fast"])
def test_fifo_config_is_byte_identical_to_default(engine):
    """`scheduler="fifo"` must not change a single bit of the output —
    the ISSUE's regression pin for the classic unscheduled path."""
    wl, cfg, mapping = _small_run()
    base = StorageSystem(
        wl.catalog, mapping, cfg.with_overrides(engine=engine)
    ).run(wl.stream)
    pinned = StorageSystem(
        wl.catalog,
        mapping,
        cfg.with_overrides(engine=engine, scheduler="fifo"),
    ).run(wl.stream)
    _assert_bit_identical(base, pinned, f"engine={engine}")


@pytest.mark.parametrize("engine", ["event", "fast"])
def test_fifo_through_machinery_is_byte_identical(engine, monkeypatch):
    """Force a `Fifo` instance through the full scheduling machinery
    (release queue / kernel pre-pass): zero holds must be arithmetic
    no-ops, bit for bit.  Guards the `if offset:` / `holds is None`
    fast paths against accidental float perturbation."""
    wl, cfg, mapping = _small_run()
    base = StorageSystem(
        wl.catalog, mapping, cfg.with_overrides(engine=engine)
    ).run(wl.stream)
    monkeypatch.setattr(
        StorageConfig, "request_scheduler", lambda self: Fifo()
    )
    forced = StorageSystem(
        wl.catalog, mapping, cfg.with_overrides(engine=engine)
    ).run(wl.stream)
    _assert_bit_identical(base, forced, f"engine={engine} (forced Fifo)")


def test_boundary_tie_release_lands_after_the_boundary():
    """A release landing *exactly* on a control boundary (k * interval)
    submits after the boundary fires, identically in both engines.  The
    randomized differential axis cannot produce this tie (float window
    vs float interval), so it is pinned here: window 10 divides
    interval 60, putting many releases exactly on boundaries."""
    wl, cfg, mapping = _small_run(seed=11)
    cfg = cfg.with_overrides(
        scheduler="batch_release",
        scheduler_params={"window": 10.0, "max_hold": 30.0},
    )
    event = StorageSystem(
        wl.catalog, mapping, cfg.with_overrides(engine="event")
    ).run(wl.stream)
    fast = StorageSystem(
        wl.catalog, mapping, cfg.with_overrides(engine="fast")
    ).run(wl.stream)
    assert event.arrivals == fast.arrivals
    assert event.completions == fast.completions
    np.testing.assert_allclose(
        np.sort(fast.response_times),
        np.sort(event.response_times),
        rtol=1e-9,
        atol=1e-9,
    )
    np.testing.assert_allclose(
        fast.energy_per_disk, event.energy_per_disk, rtol=1e-9, atol=1e-6
    )
    # The tie actually occurred: some release (quantized onto a
    # 10-multiple) coincides with a 60-multiple boundary.
    times = np.asarray(wl.stream.times)
    epochs = np.minimum(np.ceil(times / 10.0) * 10.0, times + 30.0)
    assert np.any(np.maximum(times, epochs) % 60.0 == 0.0)
