"""Unit tests for the file dispatcher (routing, cache path, writes)."""

import math

import numpy as np
import pytest

from repro.cache import LRUCache
from repro.disk import DiskArray, DiskState, ST3500630AS
from repro.errors import CapacityError, SimulationError
from repro.sim import Environment
from repro.system.dispatcher import Dispatcher, drive_stream
from repro.units import GB, MB
from repro.workload.arrivals import RequestStream


def build(env, num_disks=3, mapping=None, sizes=None, **kwargs):
    array = DiskArray(env, ST3500630AS, num_disks, idleness_threshold=math.inf)
    if sizes is None:
        sizes = np.array([72 * MB, 144 * MB, 72 * MB])
    if mapping is None:
        mapping = np.array([0, 1, 2])
    return array, Dispatcher(env, array, mapping, sizes, **kwargs)


class TestRouting:
    def test_requests_follow_mapping(self, env):
        array, disp = build(env)
        disp.submit(0)
        disp.submit(1)
        env.run(until=100.0)
        assert array[0].stats.arrivals == 1
        assert array[1].stats.arrivals == 1
        assert array[2].stats.arrivals == 0

    def test_response_recorded_on_completion(self, env):
        _, disp = build(env)
        disp.submit(0)
        env.run(until=100.0)
        assert disp.completions == 1
        assert disp.response_times[0] == pytest.approx(1.0 + 0.01266)
        assert disp.served_from_cache == [False]

    def test_unallocated_read_raises(self, env):
        _, disp = build(env, mapping=np.array([-1, 1, 2]))
        with pytest.raises(SimulationError, match="unallocated"):
            disp.submit(0)

    def test_mapping_out_of_range_rejected(self, env):
        with pytest.raises(SimulationError):
            build(env, num_disks=2, mapping=np.array([0, 1, 5]))

    def test_mapping_shape_mismatch_rejected(self, env):
        with pytest.raises(SimulationError):
            build(env, mapping=np.array([0, 1]))

    def test_overpacked_initial_mapping_rejected(self, env):
        # Two 400 GB files on one 500 GB disk: free_bytes would silently go
        # -300 GB and corrupt every later write-allocation decision.
        sizes = np.array([400 * GB, 400 * GB, 72 * MB])
        with pytest.raises(CapacityError, match="disk 0"):
            build(
                env,
                mapping=np.array([0, 0, 1]),
                sizes=sizes,
                usable_capacity=500 * GB,
            )

    def test_packer_epsilon_overpack_tolerated(self, env):
        # The packers work against a normalized capacity with a 1e-9
        # feasibility epsilon; a few hundred excess bytes must not raise.
        usable = 500 * GB
        sizes = np.array([300 * GB, usable - 300 * GB + 100.0, 72 * MB])
        _, disp = build(
            env,
            mapping=np.array([0, 0, 1]),
            sizes=sizes,
            usable_capacity=usable,
        )
        assert disp.free_bytes[0] == pytest.approx(-100.0)


class TestHeterogeneousCapacities:
    """Overpack errors on capacity *vectors* must name the offending disk
    and judge it against **its own** budget, not a neighbor's."""

    def test_overpack_error_names_disk_and_its_own_capacity(self, env):
        # 200 GB lands on the small middle disk of a [1 TB, 100 GB, 1 TB]
        # pool: the error must blame disk 1 and quote *its* 100 GB.
        capacities = np.array([1000 * GB, 100 * GB, 1000 * GB])
        sizes = np.array([200 * GB, 72 * MB, 72 * MB])
        with pytest.raises(CapacityError) as err:
            build(
                env,
                mapping=np.array([1, 0, 2]),
                sizes=sizes,
                usable_capacity=capacities,
            )
        message = str(err.value)
        assert "disk 1" in message
        assert f"{100 * GB:.0f}" in message
        assert f"{1000 * GB:.0f}" not in message

    def test_each_disk_judged_against_its_own_budget(self, env):
        # The same 200 GB file is fine on a 1 TB disk even though the
        # 100 GB neighbor could never hold it.
        capacities = np.array([1000 * GB, 100 * GB, 1000 * GB])
        sizes = np.array([200 * GB, 90 * GB, 72 * MB])
        _, disp = build(
            env,
            mapping=np.array([0, 1, 2]),
            sizes=sizes,
            usable_capacity=capacities,
        )
        assert disp.free_bytes[0] == pytest.approx(800 * GB)
        assert disp.free_bytes[1] == pytest.approx(10 * GB)

    @pytest.mark.parametrize("engine", ["event", "fast"])
    def test_fleet_overpack_end_to_end(self, engine):
        # mixed_generation alternates 500 GB / 1 TB drives: 700 GB fits
        # the green disk 1 but overpacks the Seagate disk 0 — and the
        # error says so, on both engines.
        from repro.system import StorageConfig, StorageSystem
        from repro.workload.arrivals import RequestStream
        from repro.workload.catalog import FileCatalog

        catalog = FileCatalog(
            sizes=np.array([700 * GB, 72 * MB]),
            popularities=np.array([0.5, 0.5]),
        )
        # The 700 GB read needs ~7000 s of transfer; give it room.
        stream = RequestStream(
            times=np.array([1.0, 2.0]),
            file_ids=np.array([0, 1]),
            duration=20_000.0,
        )
        config = StorageConfig(engine=engine, fleet="mixed_generation")

        ok = StorageSystem(
            catalog, np.array([1, 0]), config, num_disks=2
        ).run(stream)
        assert ok.completions == 2

        with pytest.raises(CapacityError) as err:
            StorageSystem(
                catalog, np.array([0, 1]), config, num_disks=2
            ).run(stream)
        message = str(err.value)
        assert "disk 0" in message
        assert f"{500 * GB:.0f}" in message


class TestCachePath:
    def test_hit_skips_disk(self, env):
        cache = LRUCache(1 * GB)
        array, disp = build(env, cache=cache)
        disp.submit(0)
        env.run(until=50.0)  # miss -> disk -> admitted on completion
        disp.submit(0)
        env.run(until=100.0)
        assert cache.stats.hits == 1
        assert array[0].stats.arrivals == 1  # second request never hit disk
        assert disp.response_times[1] == 0.0
        assert disp.served_from_cache == [False, True]

    def test_hit_latency_recorded(self, env):
        cache = LRUCache(1 * GB)
        _, disp = build(env, cache=cache, cache_hit_latency=0.25)
        disp.submit(0)
        env.run(until=50.0)
        disp.submit(0)
        env.run(until=100.0)
        assert disp.response_times[1] == 0.25

    def test_admit_happens_after_completion(self, env):
        cache = LRUCache(1 * GB)
        _, disp = build(env, cache=cache)
        disp.submit(0)
        # Before the transfer finishes the file is not yet cached.
        assert 0 not in cache
        env.run(until=50.0)
        assert 0 in cache


class TestWrites:
    def test_write_to_existing_file_uses_its_disk(self, env):
        array, disp = build(env)
        disp.submit(1, kind="write")
        env.run(until=100.0)
        assert array[1].stats.writes == 1
        assert disp.write_count == 1

    def test_new_file_prefers_spinning_disk(self):
        env = Environment()
        array = DiskArray(env, ST3500630AS, 2, idleness_threshold=5.0)
        sizes = np.array([100 * MB, 100 * MB])
        mapping = np.array([0, -1])
        disp = Dispatcher(env, array, mapping, sizes)

        def scenario(env):
            yield env.timeout(30.0)
            # Untouched disks spun down at the 5 s threshold by now.
            assert array[1].state is DiskState.STANDBY
            # Wake disk 0 with a read; during its spin-up/serve it counts
            # as spinning while disk 1 stays in standby.
            disp.submit(0)
            yield env.timeout(1.0)
            disp.submit(1, kind="write")

        env.process(scenario(env))
        env.run(until=100.0)
        # The write landed on the spinning disk 0, not standby disk 1.
        assert disp.mapping[1] == 0
        assert array[0].stats.writes == 1

    def test_write_capacity_error(self, env):
        sizes = np.array([400 * GB, 200 * GB])
        mapping = np.array([0, -1])
        array = DiskArray(env, ST3500630AS, 1, idleness_threshold=math.inf)
        disp = Dispatcher(
            env, array, mapping, sizes, usable_capacity=500 * GB
        )
        with pytest.raises(CapacityError):
            disp.submit(1, kind="write")

    def test_free_bytes_tracks_writes(self, env):
        array, disp = build(env, mapping=np.array([0, 0, -1]))
        before = disp.free_bytes[0]
        disp.submit(2, kind="write")
        env.run(until=100.0)
        written_disk = disp.mapping[2]
        assert disp.free_bytes[written_disk] <= before

    def test_spinning_branch_is_best_fit(self, env):
        # Both disks spinning (threshold inf fixture): the write lands on
        # the one with the *tightest* remaining space, not the emptiest.
        sizes = np.array([300 * GB, 100 * GB, 10 * GB])
        array, disp = build(env, mapping=np.array([0, 1, -1]), sizes=sizes)
        disp.submit(2, kind="write")
        env.run(until=10_000.0)
        assert disp.mapping[2] == 0  # 200 GB free beats 400 GB free
        assert array[0].stats.writes == 1

    def test_standby_fallback_is_worst_fit(self):
        # Whole pool asleep: the fallback wakes the disk with the *most*
        # free space, so one spin-up absorbs the most future writes.
        env = Environment()
        array = DiskArray(env, ST3500630AS, 3, idleness_threshold=2.0)
        sizes = np.array([300 * GB, 100 * GB, 10 * GB])
        mapping = np.array([0, 1, -1])
        disp = Dispatcher(env, array, mapping, sizes)

        def scenario(env):
            yield env.timeout(30.0)
            assert all(d.state is DiskState.STANDBY for d in array.disks)
            disp.submit(2, kind="write")

        env.process(scenario(env))
        env.run(until=10_000.0)
        assert disp.mapping[2] == 2  # untouched disk 2 has the most space
        assert array[2].stats.writes == 1


class TestDriveStream:
    def test_replays_arrival_times(self, env):
        array, disp = build(env)
        stream = RequestStream(
            times=np.array([5.0, 10.0]),
            file_ids=np.array([0, 2]),
            duration=20.0,
        )
        env.process(drive_stream(env, disp, stream))
        env.run(until=5.5)
        assert disp.arrivals == 1
        env.run(until=20.0)
        assert disp.arrivals == 2
        assert disp.completions == 2

    def test_simultaneous_arrivals(self, env):
        array, disp = build(env)
        stream = RequestStream(
            times=np.array([1.0, 1.0, 1.0]),
            file_ids=np.array([0, 1, 2]),
            duration=5.0,
        )
        env.process(drive_stream(env, disp, stream))
        env.run(until=5.0)
        assert disp.arrivals == 3

    def test_decreasing_times_raise(self, env):
        # Out-of-order timestamps used to be silently coalesced to env.now,
        # replaying the request at the wrong instant.
        _, disp = build(env)
        stream = [(5.0, 0), (3.0, 1)]
        env.process(drive_stream(env, disp, stream))
        with pytest.raises(SimulationError, match="non-decreasing"):
            env.run(until=100.0)
        assert disp.arrivals == 1  # only the in-order prefix was submitted
