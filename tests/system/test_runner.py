"""Tests for the high-level runners (allocate / simulate / reorganize)."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.system import (
    ReorganizingRunner,
    StorageConfig,
    allocate,
    build_items,
    run_policy,
    simulate,
)
from repro.workload import (
    FileCatalog,
    RequestStream,
    SyntheticWorkloadParams,
    generate_workload,
)


@pytest.fixture(scope="module")
def workload():
    return generate_workload(
        SyntheticWorkloadParams(
            n_files=1_500, arrival_rate=2.0, duration=400.0, seed=11
        )
    )


# 1500 files at R=2 carry ~33 disk-seconds/s of load (small catalogs have
# a hot, large head), needing ~48 disks at L=0.7; a 60-disk pool leaves
# Pack_Disks comfortable headroom.
CFG = StorageConfig(num_disks=60, load_constraint=0.7)


class TestBuildItems:
    def test_normalization(self, workload):
        items = build_items(workload.catalog, CFG, arrival_rate=2.0)
        assert len(items) == 1_500
        assert all(0 <= it.size <= 1 and 0 <= it.load <= 1 for it in items)

    def test_loads_scale_with_rate(self, workload):
        low = build_items(workload.catalog, CFG, arrival_rate=1.0)
        high = build_items(workload.catalog, CFG, arrival_rate=2.0)
        assert high[0].load == pytest.approx(2 * low[0].load)

    def test_popularity_override(self, workload):
        uniform = np.full(1_500, 1 / 1_500)
        items = build_items(
            workload.catalog, CFG, arrival_rate=2.0, popularities=uniform
        )
        # Uniform popularity: load proportional to service time only.
        assert items[0].load < items[-1].load


class TestAllocate:
    @pytest.mark.parametrize(
        "policy",
        ["pack", "pack_v4", "pack_v2", "random", "round_robin",
         "first_fit", "first_fit_decreasing", "best_fit", "next_fit"],
    )
    def test_policies_produce_valid_allocations(self, workload, policy):
        alloc = allocate(workload.catalog, policy, CFG, 2.0, rng=1)
        items = build_items(workload.catalog, CFG, 2.0)
        # Random/round-robin are load-oblivious; check storage only.
        for disk in alloc.disks:
            assert disk.total_size <= 1 + 1e-9
        assert alloc.num_items == len(items)

    def test_unknown_policy(self, workload):
        with pytest.raises(ConfigError):
            allocate(workload.catalog, "quantum", CFG, 2.0)

    def test_pack_uses_fewer_disks_than_pool(self, workload):
        alloc = allocate(workload.catalog, "pack", CFG, 2.0)
        assert alloc.num_disks <= CFG.num_disks


class TestRunPolicy:
    def test_end_to_end(self, workload):
        res = run_policy(
            workload.catalog, workload.stream, "pack", CFG, arrival_rate=2.0
        )
        assert res.arrivals == len(workload.stream)
        assert res.energy > 0
        assert res.num_disks == CFG.num_disks

    def test_rate_defaults_to_stream_rate(self, workload):
        res = run_policy(workload.catalog, workload.stream, "pack", CFG)
        assert res.completions > 0

    def test_deterministic(self, workload):
        a = run_policy(
            workload.catalog, workload.stream, "random", CFG, rng=5
        )
        b = run_policy(
            workload.catalog, workload.stream, "random", CFG, rng=5
        )
        assert a.energy == pytest.approx(b.energy)
        assert np.array_equal(a.response_times, b.response_times)

    def test_simulate_with_explicit_allocation(self, workload):
        alloc = allocate(workload.catalog, "pack", CFG, 2.0)
        res = simulate(
            workload.catalog, workload.stream, alloc, CFG, label="custom"
        )
        assert res.algorithm == "custom"


class TestReorganizingRunner:
    def test_epochs_and_movement(self):
        catalog = FileCatalog.from_zipf(n=300, s_max=1e9)
        stream = RequestStream.poisson(
            catalog.popularities, rate=1.0, duration=600.0, rng=3
        )
        cfg = StorageConfig(num_disks=10, load_constraint=0.8)
        runner = ReorganizingRunner(catalog, cfg, interval=200.0)
        result = runner.run(stream)
        assert result.extra["epochs"] == 3.0
        assert len(runner.epoch_results) == 3
        assert len(runner.moved_files) == 2  # epochs-1 remap events
        assert result.arrivals == len(stream)
        assert result.algorithm == "pack+reorg"

    def test_invalid_interval(self, small_catalog):
        with pytest.raises(ConfigError):
            ReorganizingRunner(small_catalog, CFG, interval=0.0)

    def test_invalid_smoothing(self, small_catalog):
        with pytest.raises(ConfigError):
            ReorganizingRunner(small_catalog, CFG, smoothing=2.0)

    def test_energy_per_disk_aggregated_across_epochs(self):
        # Regression: per-disk energy used to be reported as zeros.
        catalog = FileCatalog.from_zipf(n=300, s_max=1e9)
        stream = RequestStream.poisson(
            catalog.popularities, rate=1.0, duration=600.0, rng=3
        )
        cfg = StorageConfig(num_disks=10, load_constraint=0.8)
        runner = ReorganizingRunner(catalog, cfg, interval=200.0)
        result = runner.run(stream)
        assert result.energy_per_disk.shape == (result.num_disks,)
        assert np.all(result.energy_per_disk > 0)  # every disk draws power
        assert result.energy_per_disk.sum() == pytest.approx(result.energy)
        # Each disk's total is the sum of its per-epoch energies.
        assert result.energy_per_disk[0] == pytest.approx(
            sum(r.energy_per_disk[0] for r in runner.epoch_results)
        )

    def test_num_disks_is_max_pool_across_epochs(self):
        catalog = FileCatalog.from_zipf(n=300, s_max=1e9)
        stream = RequestStream.poisson(
            catalog.popularities, rate=1.0, duration=600.0, rng=3
        )
        cfg = StorageConfig(num_disks=10, load_constraint=0.8)
        runner = ReorganizingRunner(catalog, cfg, interval=200.0)
        result = runner.run(stream)
        assert result.num_disks == max(
            r.num_disks for r in runner.epoch_results
        )


class TestReorganizingRunnerSplit:
    """Regression tests for the float-accumulation epoch-edge bugs."""

    def _runner(self, catalog, interval):
        return ReorganizingRunner(catalog, CFG, interval=interval)

    def test_no_sliver_epoch_from_float_accumulation(self, small_catalog):
        # 3 * 0.1 != 0.3 in floats: np.arange used to emit a fourth,
        # zero-length epoch here, crashing StorageSystem.run.
        duration = 0.1 + 0.1 + 0.1  # 0.30000000000000004
        stream = RequestStream(
            times=np.array([0.05, 0.15, 0.25]),
            file_ids=np.array([0, 1, 2]),
            duration=duration,
        )
        epochs = self._runner(small_catalog, 0.1)._split(stream)
        assert len(epochs) == 3
        assert all(epoch.duration > 0 for epoch, _ in epochs)
        assert sum(epoch.duration for epoch, _ in epochs) == pytest.approx(
            duration
        )

    def test_split_runs_end_to_end_on_sliver_duration(self, small_catalog):
        stream = RequestStream.poisson(
            small_catalog.popularities,
            rate=0.5,
            duration=0.1 + 0.1 + 0.1,
            rng=1,
        )
        runner = self._runner(small_catalog, 0.1)
        result = runner.run(stream)
        assert result.extra["epochs"] == 3.0

    def test_partial_final_epoch_spans_remainder(self, small_catalog):
        stream = RequestStream(
            times=np.array([10.0, 450.0]),
            file_ids=np.array([0, 1]),
            duration=500.0,
        )
        epochs = self._runner(small_catalog, 200.0)._split(stream)
        assert len(epochs) == 3
        assert epochs[-1][0].duration == pytest.approx(100.0)
        assert epochs[-1][1] == pytest.approx(400.0)

    def test_request_at_exact_horizon_lands_in_final_epoch(
        self, small_catalog
    ):
        # RequestStream permits times[-1] == duration; the final epoch's
        # upper bound must be inclusive or the request silently vanishes.
        stream = RequestStream(
            times=np.array([50.0, 250.0, 600.0]),
            file_ids=np.array([0, 1, 2]),
            duration=600.0,
        )
        epochs = self._runner(small_catalog, 200.0)._split(stream)
        assert sum(len(epoch) for epoch, _ in epochs) == len(stream)
        last_epoch = epochs[-1][0]
        assert last_epoch.times[-1] == pytest.approx(last_epoch.duration)

    def test_interval_longer_than_stream_yields_one_epoch(
        self, small_catalog
    ):
        stream = RequestStream(
            times=np.array([5.0]), file_ids=np.array([0]), duration=100.0
        )
        epochs = self._runner(small_catalog, 1_000.0)._split(stream)
        assert len(epochs) == 1
        assert epochs[0][0].duration == pytest.approx(100.0)
