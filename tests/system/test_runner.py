"""Tests for the high-level runners (allocate / simulate / reorganize)."""

import numpy as np
import pytest

from repro.disk.drive import READ, WRITE
from repro.errors import ConfigError
from repro.system import (
    ReorganizingRunner,
    StorageConfig,
    allocate,
    build_items,
    run_policy,
    simulate,
)
from repro.workload import (
    FileCatalog,
    RequestStream,
    SyntheticWorkloadParams,
    generate_workload,
)
from repro.workload.mixed import (
    MixedRequestStream,
    MixedWorkloadParams,
    generate_mixed_workload,
)


@pytest.fixture(scope="module")
def workload():
    return generate_workload(
        SyntheticWorkloadParams(
            n_files=1_500, arrival_rate=2.0, duration=400.0, seed=11
        )
    )


# 1500 files at R=2 carry ~33 disk-seconds/s of load (small catalogs have
# a hot, large head), needing ~48 disks at L=0.7; a 60-disk pool leaves
# Pack_Disks comfortable headroom.
CFG = StorageConfig(num_disks=60, load_constraint=0.7)


class TestBuildItems:
    def test_normalization(self, workload):
        items = build_items(workload.catalog, CFG, arrival_rate=2.0)
        assert len(items) == 1_500
        assert all(0 <= it.size <= 1 and 0 <= it.load <= 1 for it in items)

    def test_loads_scale_with_rate(self, workload):
        low = build_items(workload.catalog, CFG, arrival_rate=1.0)
        high = build_items(workload.catalog, CFG, arrival_rate=2.0)
        assert high[0].load == pytest.approx(2 * low[0].load)

    def test_popularity_override(self, workload):
        uniform = np.full(1_500, 1 / 1_500)
        items = build_items(
            workload.catalog, CFG, arrival_rate=2.0, popularities=uniform
        )
        # Uniform popularity: load proportional to service time only.
        assert items[0].load < items[-1].load


class TestAllocate:
    @pytest.mark.parametrize(
        "policy",
        ["pack", "pack_v4", "pack_v2", "random", "round_robin",
         "first_fit", "first_fit_decreasing", "best_fit", "next_fit"],
    )
    def test_policies_produce_valid_allocations(self, workload, policy):
        alloc = allocate(workload.catalog, policy, CFG, 2.0, rng=1)
        items = build_items(workload.catalog, CFG, 2.0)
        # Random/round-robin are load-oblivious; check storage only.
        for disk in alloc.disks:
            assert disk.total_size <= 1 + 1e-9
        assert alloc.num_items == len(items)

    def test_unknown_policy(self, workload):
        with pytest.raises(ConfigError):
            allocate(workload.catalog, "quantum", CFG, 2.0)

    def test_pack_uses_fewer_disks_than_pool(self, workload):
        alloc = allocate(workload.catalog, "pack", CFG, 2.0)
        assert alloc.num_disks <= CFG.num_disks


class TestRunPolicy:
    def test_end_to_end(self, workload):
        res = run_policy(
            workload.catalog, workload.stream, "pack", CFG, arrival_rate=2.0
        )
        assert res.arrivals == len(workload.stream)
        assert res.energy > 0
        assert res.num_disks == CFG.num_disks

    def test_rate_defaults_to_stream_rate(self, workload):
        res = run_policy(workload.catalog, workload.stream, "pack", CFG)
        assert res.completions > 0

    def test_deterministic(self, workload):
        a = run_policy(
            workload.catalog, workload.stream, "random", CFG, rng=5
        )
        b = run_policy(
            workload.catalog, workload.stream, "random", CFG, rng=5
        )
        assert a.energy == pytest.approx(b.energy)
        assert np.array_equal(a.response_times, b.response_times)

    def test_simulate_with_explicit_allocation(self, workload):
        alloc = allocate(workload.catalog, "pack", CFG, 2.0)
        res = simulate(
            workload.catalog, workload.stream, alloc, CFG, label="custom"
        )
        assert res.algorithm == "custom"


class TestReorganizingRunner:
    def test_epochs_and_movement(self):
        catalog = FileCatalog.from_zipf(n=300, s_max=1e9)
        stream = RequestStream.poisson(
            catalog.popularities, rate=1.0, duration=600.0, rng=3
        )
        cfg = StorageConfig(num_disks=10, load_constraint=0.8)
        runner = ReorganizingRunner(catalog, cfg, interval=200.0)
        result = runner.run(stream)
        assert result.extra["epochs"] == 3.0
        assert len(runner.epoch_results) == 3
        assert len(runner.moved_files) == 2  # epochs-1 remap events
        assert result.arrivals == len(stream)
        assert result.algorithm == "pack+reorg"

    def test_invalid_interval(self, small_catalog):
        with pytest.raises(ConfigError):
            ReorganizingRunner(small_catalog, CFG, interval=0.0)

    def test_invalid_smoothing(self, small_catalog):
        with pytest.raises(ConfigError):
            ReorganizingRunner(small_catalog, CFG, smoothing=2.0)

    def test_energy_per_disk_aggregated_across_epochs(self):
        # Regression: per-disk energy used to be reported as zeros.
        catalog = FileCatalog.from_zipf(n=300, s_max=1e9)
        stream = RequestStream.poisson(
            catalog.popularities, rate=1.0, duration=600.0, rng=3
        )
        cfg = StorageConfig(num_disks=10, load_constraint=0.8)
        runner = ReorganizingRunner(catalog, cfg, interval=200.0)
        result = runner.run(stream)
        assert result.energy_per_disk.shape == (result.num_disks,)
        assert np.all(result.energy_per_disk > 0)  # every disk draws power
        assert result.energy_per_disk.sum() == pytest.approx(result.energy)
        # Each disk's total is the sum of its per-epoch energies.
        assert result.energy_per_disk[0] == pytest.approx(
            sum(r.energy_per_disk[0] for r in runner.epoch_results)
        )

    def test_num_disks_is_max_pool_across_epochs(self):
        catalog = FileCatalog.from_zipf(n=300, s_max=1e9)
        stream = RequestStream.poisson(
            catalog.popularities, rate=1.0, duration=600.0, rng=3
        )
        cfg = StorageConfig(num_disks=10, load_constraint=0.8)
        runner = ReorganizingRunner(catalog, cfg, interval=200.0)
        result = runner.run(stream)
        assert result.num_disks == max(
            r.num_disks for r in runner.epoch_results
        )


class TestReorganizingRunnerMixedStreams:
    """Regression: epoch splitting used to drop ``kinds`` silently."""

    def _mixed(self, seed=7, duration=600.0):
        base = FileCatalog.from_zipf(n=250, s_max=1e9)
        catalog, stream = generate_mixed_workload(
            base,
            MixedWorkloadParams(
                write_fraction=0.4,
                new_file_fraction=0.5,
                arrival_rate=1.0,
                duration=duration,
                seed=seed,
            ),
        )
        return catalog, stream

    def test_split_threads_kinds_through_epochs(self):
        catalog, stream = self._mixed()
        runner = ReorganizingRunner(
            catalog, StorageConfig(num_disks=10, load_constraint=0.8),
            interval=200.0,
        )
        epochs = runner._split(stream)
        assert all(isinstance(e, MixedRequestStream) for e, _ in epochs)
        assert sum(len(e) for e, _ in epochs) == len(stream)
        # Kinds stay aligned with their requests across the split.
        n_writes = int(np.sum(stream.kinds == WRITE))
        assert sum(int(np.sum(e.kinds == WRITE)) for e, _ in epochs) == n_writes
        assert n_writes > 0
        for epoch, start in epochs:
            lo = np.searchsorted(stream.times, start)
            np.testing.assert_array_equal(
                epoch.kinds, stream.kinds[lo:lo + len(epoch)]
            )

    def test_split_rejects_misaligned_kinds(self, small_catalog):
        stream = MixedRequestStream(
            times=np.array([1.0, 2.0]),
            file_ids=np.array([0, 1]),
            kinds=np.array([READ, WRITE]),
            duration=10.0,
        )
        stream.kinds = np.array([READ])  # corrupt after validation
        runner = ReorganizingRunner(small_catalog, CFG, interval=5.0)
        with pytest.raises(ConfigError, match="kinds"):
            runner._split(stream)

    def test_writes_are_not_simulated_as_reads(self):
        # The observable difference between a write and a read is the
        # shared cache: reads are looked up, writes are not.  The old
        # _split rebuilt epochs as plain RequestStreams, so every write
        # hit the cache path as a read and inflated lookups.
        catalog, stream = self._mixed()
        cfg = StorageConfig(
            num_disks=10,
            load_constraint=0.8,
            cache_policy="lru",
        )
        runner = ReorganizingRunner(catalog, cfg, interval=200.0)
        result = runner.run(stream)
        assert result.arrivals == len(stream)
        n_reads = int(np.sum(stream.kinds == READ))
        lookups = sum(
            r.cache_stats.lookups for r in runner.epoch_results
        )
        assert lookups == n_reads
        assert n_reads < len(stream)  # the stream really carries writes


class TestReorganizingRunnerInitialCandidates:
    """Allocation candidates tournament at every epoch via the orchestrator."""

    def _workload(self):
        catalog = FileCatalog.from_zipf(n=300, s_max=1e9)
        stream = RequestStream.poisson(
            catalog.popularities, rate=1.0, duration=600.0, rng=3
        )
        return catalog, stream

    CANDIDATES = ("pack", "first_fit_decreasing", "best_fit")

    def test_winner_minimizes_energy_and_seeds_the_chain(self):
        catalog, stream = self._workload()
        cfg = StorageConfig(num_disks=10, load_constraint=0.8)
        runner = ReorganizingRunner(
            catalog, cfg, interval=200.0,
            initial_candidates=self.CANDIDATES,
        )
        result = runner.run(stream)
        assert runner.chosen_initial_policy in self.CANDIDATES
        assert set(runner.initial_candidate_results) == set(self.CANDIDATES)
        best = runner.initial_candidate_results[runner.chosen_initial_policy]
        assert best.energy == min(
            r.energy for r in runner.initial_candidate_results.values()
        )
        # The winning candidate's simulation *is* the epoch-0 result.
        assert runner.epoch_results[0] is best
        assert runner.epoch_results[0].algorithm == (
            f"{runner.chosen_initial_policy}@epoch0"
        )
        # The tournament re-runs at every re-pack epoch: each epoch's
        # result is its own winner's simulation.
        assert runner.epoch_results[1].algorithm == (
            f"{runner.chosen_policies[1]}@epoch1"
        )
        assert result.arrivals == len(stream)
        assert result.extra["epochs"] == 3.0

    def test_tournament_reruns_at_every_epoch(self):
        catalog, stream = self._workload()
        cfg = StorageConfig(num_disks=10, load_constraint=0.8)
        runner = ReorganizingRunner(
            catalog, cfg, interval=200.0,
            initial_candidates=self.CANDIDATES,
        )
        result = runner.run(stream)
        n_epochs = int(result.extra["epochs"])
        assert n_epochs == 3
        # One winner and one full candidate-result dict per epoch.
        assert len(runner.chosen_policies) == n_epochs
        assert all(p in self.CANDIDATES for p in runner.chosen_policies)
        assert len(runner.candidate_results) == n_epochs
        for i, per_epoch in enumerate(runner.candidate_results):
            assert set(per_epoch) == set(self.CANDIDATES)
            winner = runner.chosen_policies[i]
            assert per_epoch[winner].energy == min(
                r.energy for r in per_epoch.values()
            )
            assert runner.epoch_results[i] is per_epoch[winner]
        # Epoch-0 compat surface unchanged.
        assert runner.chosen_initial_policy == runner.chosen_policies[0]
        assert runner.initial_candidate_results == runner.candidate_results[0]
        assert result.extra["chosen_policies"] == runner.chosen_policies

    def test_no_candidates_keeps_serial_chain_semantics(self):
        catalog, stream = self._workload()
        cfg = StorageConfig(num_disks=10, load_constraint=0.8)
        runner = ReorganizingRunner(catalog, cfg, interval=200.0)
        result = runner.run(stream)
        assert runner.chosen_policies == []
        assert runner.candidate_results == []
        assert "chosen_policies" not in result.extra
        assert all(
            r.algorithm == f"pack@epoch{i}"
            for i, r in enumerate(runner.epoch_results)
        )

    def test_single_candidate_matches_serial_run(self):
        catalog, stream = self._workload()
        cfg = StorageConfig(num_disks=10, load_constraint=0.8)
        serial = ReorganizingRunner(catalog, cfg, interval=200.0).run(stream)
        fanned = ReorganizingRunner(
            catalog, cfg, interval=200.0, initial_candidates=("pack",)
        ).run(stream)
        assert fanned.energy == pytest.approx(serial.energy, rel=1e-12)
        assert fanned.arrivals == serial.arrivals
        assert np.allclose(fanned.response_times, serial.response_times)

    def test_generator_rng_rejected(self, small_catalog, rng):
        runner = ReorganizingRunner(
            small_catalog, CFG, interval=200.0,
            initial_candidates=("pack", "best_fit"),
        )
        stream = RequestStream.poisson(
            small_catalog.popularities, rate=0.5, duration=400.0, rng=1
        )
        with pytest.raises(ConfigError, match="seed"):
            runner.run(stream, rng=rng)

    def test_random_candidate_requires_seed(self, small_catalog):
        runner = ReorganizingRunner(
            small_catalog, CFG, interval=200.0,
            initial_candidates=("pack", "random"),
        )
        stream = RequestStream.poisson(
            small_catalog.popularities, rate=0.5, duration=400.0, rng=1
        )
        with pytest.raises(ConfigError, match="random"):
            runner.run(stream)
        result = runner.run(stream, rng=9)  # a seed makes it legal
        assert runner.chosen_initial_policy in ("pack", "random")
        assert result.arrivals == len(stream)


class TestReorganizingRunnerSplit:
    """Regression tests for the float-accumulation epoch-edge bugs."""

    def _runner(self, catalog, interval):
        return ReorganizingRunner(catalog, CFG, interval=interval)

    def test_no_sliver_epoch_from_float_accumulation(self, small_catalog):
        # 3 * 0.1 != 0.3 in floats: np.arange used to emit a fourth,
        # zero-length epoch here, crashing StorageSystem.run.
        duration = 0.1 + 0.1 + 0.1  # 0.30000000000000004
        stream = RequestStream(
            times=np.array([0.05, 0.15, 0.25]),
            file_ids=np.array([0, 1, 2]),
            duration=duration,
        )
        epochs = self._runner(small_catalog, 0.1)._split(stream)
        assert len(epochs) == 3
        assert all(epoch.duration > 0 for epoch, _ in epochs)
        assert sum(epoch.duration for epoch, _ in epochs) == pytest.approx(
            duration
        )

    def test_split_runs_end_to_end_on_sliver_duration(self, small_catalog):
        stream = RequestStream.poisson(
            small_catalog.popularities,
            rate=0.5,
            duration=0.1 + 0.1 + 0.1,
            rng=1,
        )
        runner = self._runner(small_catalog, 0.1)
        result = runner.run(stream)
        assert result.extra["epochs"] == 3.0

    def test_partial_final_epoch_spans_remainder(self, small_catalog):
        stream = RequestStream(
            times=np.array([10.0, 450.0]),
            file_ids=np.array([0, 1]),
            duration=500.0,
        )
        epochs = self._runner(small_catalog, 200.0)._split(stream)
        assert len(epochs) == 3
        assert epochs[-1][0].duration == pytest.approx(100.0)
        assert epochs[-1][1] == pytest.approx(400.0)

    def test_request_at_exact_horizon_lands_in_final_epoch(
        self, small_catalog
    ):
        # RequestStream permits times[-1] == duration; the final epoch's
        # upper bound must be inclusive or the request silently vanishes.
        stream = RequestStream(
            times=np.array([50.0, 250.0, 600.0]),
            file_ids=np.array([0, 1, 2]),
            duration=600.0,
        )
        epochs = self._runner(small_catalog, 200.0)._split(stream)
        assert sum(len(epoch) for epoch, _ in epochs) == len(stream)
        last_epoch = epochs[-1][0]
        assert last_epoch.times[-1] == pytest.approx(last_epoch.duration)

    def test_interval_longer_than_stream_yields_one_epoch(
        self, small_catalog
    ):
        stream = RequestStream(
            times=np.array([5.0]), file_ids=np.array([0]), duration=100.0
        )
        epochs = self._runner(small_catalog, 1_000.0)._split(stream)
        assert len(epochs) == 1
        assert epochs[0][0].duration == pytest.approx(100.0)
