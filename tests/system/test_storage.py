"""Integration tests for the assembled StorageSystem."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.system import StorageConfig, StorageSystem
from repro.units import GiB, MB
from repro.workload import FileCatalog, RequestStream


@pytest.fixture
def catalog():
    sizes = np.full(20, 72 * MB)
    pops = np.full(20, 1 / 20)
    return FileCatalog(sizes=sizes, popularities=pops)


@pytest.fixture
def stream(catalog, rng):
    return RequestStream.poisson(
        catalog.popularities, rate=0.5, duration=500.0, rng=rng
    )


class TestConstruction:
    def test_pool_covers_mapping(self, catalog):
        mapping = np.arange(20) % 4
        system = StorageSystem(catalog, mapping, StorageConfig(num_disks=2))
        assert len(system.array) == 4  # grown to cover the mapping

    def test_pool_respects_config_when_larger(self, catalog):
        mapping = np.zeros(20, dtype=np.int64)
        system = StorageSystem(catalog, mapping, StorageConfig(num_disks=8))
        assert len(system.array) == 8

    def test_explicit_pool_too_small_rejected(self, catalog):
        mapping = np.arange(20) % 4
        with pytest.raises(ConfigError):
            StorageSystem(catalog, mapping, StorageConfig(), num_disks=2)

    def test_mapping_length_must_match_catalog(self, catalog):
        with pytest.raises(ConfigError):
            StorageSystem(catalog, np.zeros(5, dtype=np.int64), StorageConfig())

    def test_cache_constructed_from_config(self, catalog):
        system = StorageSystem(
            catalog,
            np.zeros(20, dtype=np.int64),
            StorageConfig(num_disks=1, cache_policy="lru", cache_capacity=GiB),
        )
        assert system.dispatcher.cache is not None
        assert system.dispatcher.cache.capacity == GiB


class TestRun:
    def test_all_requests_complete_at_low_load(self, catalog, stream):
        mapping = np.arange(20) % 5
        system = StorageSystem(catalog, mapping, StorageConfig(num_disks=5))
        # Pad the horizon so in-flight requests at the stream's end drain.
        result = system.run(stream, duration=stream.duration + 60.0)
        assert result.arrivals == len(stream)
        assert result.completions == result.arrivals
        assert result.duration == stream.duration + 60.0
        assert result.energy > 0

    def test_energy_conservation(self, catalog, stream):
        # Total state time must equal duration x pool size, and energy must
        # equal the power-weighted integral of it.
        from repro.disk import PowerModel

        mapping = np.arange(20) % 5
        system = StorageSystem(catalog, mapping, StorageConfig(num_disks=5))
        result = system.run(stream)
        total_time = sum(result.state_durations.values())
        assert total_time == pytest.approx(result.duration * result.num_disks)
        pm = PowerModel(system.config.spec)
        assert result.energy == pytest.approx(pm.energy(result.state_durations))

    def test_responses_positive_and_bounded(self, catalog, stream):
        mapping = np.arange(20) % 5
        system = StorageSystem(catalog, mapping, StorageConfig(num_disks=5))
        result = system.run(stream)
        service = 1.0  # 72 MB at 72 MB/s
        assert np.all(result.response_times >= service * 0.99)
        assert np.all(result.response_times <= stream.duration)

    def test_duration_cutoff_censors_completions(self, catalog):
        # One giant service can't finish before the cutoff.
        big = FileCatalog(
            sizes=np.array([7_200 * MB]), popularities=np.array([1.0])
        )
        stream = RequestStream(
            times=np.array([0.0]), file_ids=np.array([0]), duration=10.0
        )
        system = StorageSystem(
            big, np.array([0]), StorageConfig(num_disks=1)
        )
        result = system.run(stream)
        assert result.arrivals == 1
        assert result.completions == 0

    def test_invalid_duration(self, catalog, stream):
        system = StorageSystem(
            catalog, np.zeros(20, dtype=np.int64), StorageConfig(num_disks=1)
        )
        with pytest.raises(ConfigError):
            system.run(stream, duration=0.0)

    def test_label_propagates(self, catalog, stream):
        mapping = np.arange(20) % 5
        system = StorageSystem(catalog, mapping, StorageConfig(num_disks=5))
        result = system.run(stream, label="mylabel")
        assert result.algorithm == "mylabel"
