"""The merged-percentile guard (reprolint R006's runtime counterpart).

``ResponseStats.merge`` cannot combine P² estimators, so merged
percentiles are NaN and the result carries ``percentiles_lost=True``.
These tests pin the guard rails around that contract: experiment code
cannot read ``p95_response`` (or any percentile) off a merged-stats
result without a loud warning, while unmerged streaming results stay
silent.
"""

from __future__ import annotations

import math
import warnings

import numpy as np
import pytest

from repro.system.metrics import ResponseAccumulator, ResponseStats, SimulationResult


def _stats(values):
    acc = ResponseAccumulator()
    acc.add(np.asarray(values, dtype=float))
    return acc.result()


def _result_with(stats):
    return SimulationResult(
        algorithm="test",
        duration=100.0,
        num_disks=1,
        energy=1.0,
        energy_per_disk=np.array([1.0]),
        state_durations={},
        response_times=None,
        arrivals=stats.count,
        completions=stats.count,
        spinups=0,
        spindowns=0,
        always_on_energy=2.0,
        response_stats=stats,
    )


@pytest.fixture
def merged():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        return ResponseStats.merge(
            [_stats([1.0, 2.0, 3.0]), _stats([4.0, 5.0, 6.0])]
        )


class TestMergeContract:
    def test_merge_warns_once_per_chain(self):
        parts = [_stats([1.0, 2.0]), _stats([3.0, 4.0])]
        with pytest.warns(RuntimeWarning, match="cannot combine"):
            merged = ResponseStats.merge(parts)
        # Re-merging an already-lossy result stays silent (the chain
        # already warned) but keeps the marker.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            again = ResponseStats.merge([merged, _stats([5.0])])
        assert again.percentiles_lost

    def test_merged_percentiles_are_nan_and_marked(self, merged):
        assert merged.percentiles_lost
        assert math.isnan(merged.p95)
        assert merged.count == 6
        assert merged.min == 1.0 and merged.max == 6.0

    def test_exact_fields_still_merge(self, merged):
        assert merged.total == pytest.approx(21.0)
        assert merged.mean == pytest.approx(3.5)


class TestSimulationResultGuard:
    def test_p95_read_off_merged_stats_warns(self, merged):
        result = _result_with(merged)
        with pytest.warns(RuntimeWarning, match="percentiles_lost"):
            value = result.p95_response
        assert math.isnan(value)

    def test_median_read_off_merged_stats_warns(self, merged):
        result = _result_with(merged)
        with pytest.warns(RuntimeWarning, match="percentiles_lost"):
            value = result.median_response
        assert math.isnan(value)

    def test_mean_stays_exact_and_silent(self, merged):
        result = _result_with(merged)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert result.mean_response == pytest.approx(3.5)

    def test_unmerged_streaming_result_is_silent(self):
        result = _result_with(_stats([1.0, 2.0, 3.0, 4.0, 5.0]))
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            # A P² estimate, not the exact percentile — the guard cares
            # only that the read is finite and silent.
            assert math.isfinite(result.p95_response)


class TestSummaryRendering:
    def test_summary_on_merged_stats_names_the_loss_silently(self, merged):
        """Regression: ``summary()`` on merged streaming stats used to
        print "median nan s, p95 nan s" and re-fire the percentiles_lost
        RuntimeWarning twice (once per percentile read).  It must render
        the exact fields plus "(percentiles lost in merge)" and emit no
        warning at all."""
        result = _result_with(merged)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            text = result.summary()
        assert "(percentiles lost in merge)" in text
        assert "mean 3.50 s" in text
        assert "max 6.00 s" in text
        assert "nan" not in text

    def test_summary_on_unmerged_streaming_stats_unchanged(self):
        result = _result_with(_stats([1.0, 2.0, 3.0, 4.0, 5.0]))
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            text = result.summary()
        assert "median" in text and "p95" in text
        assert "percentiles lost" not in text

    def test_summary_on_full_result_unchanged(self):
        result = _result_with(_stats([1.0, 2.0, 3.0]))
        result.response_times = np.array([1.0, 2.0, 3.0])
        text = result.summary()
        assert "mean 2.00 s" in text and "median 2.00 s" in text
