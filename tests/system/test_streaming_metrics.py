"""Streaming response accumulators: partition invariance, P² accuracy,
epoch merging, and the streaming-aware SimulationResult properties."""

import math
import warnings

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.system.metrics import (
    ResponseAccumulator,
    ResponseStats,
    SimulationResult,
)


def _partition(values, cuts):
    """Split ``values`` at the (sorted, deduplicated) cut indices."""
    edges = sorted({0, *cuts, len(values)})
    return [values[a:b] for a, b in zip(edges[:-1], edges[1:])]


def _fold(parts):
    acc = ResponseAccumulator()
    for part in parts:
        acc.add(part)
    return acc.result()


class TestPartitionInvariance:
    """The exactness contract: any partition of the same value sequence
    folds to the *bit-identical* ResponseStats."""

    @given(
        values=st.lists(
            st.floats(0.0, 1e6, allow_nan=False), min_size=0, max_size=400
        ),
        cuts=st.lists(st.integers(0, 400), max_size=8),
        data=st.data(),
    )
    @settings(max_examples=200, deadline=None)
    def test_any_partition_is_bit_identical(self, values, cuts, data):
        arr = np.asarray(values, dtype=float)
        mono = _fold([arr])
        split = _fold(_partition(arr, [c for c in cuts if c <= arr.size]))
        assert split == mono  # frozen dataclass: field-wise equality

    def test_partition_invariance_across_p2_warmup(self):
        """Chunk boundaries straddling the warmup→stride switchover must
        not change which observations feed the P² estimators."""
        rng = np.random.default_rng(0)
        n = ResponseAccumulator.P2_WARMUP + 4096
        values = rng.exponential(5.0, size=n)
        mono = _fold([values])
        for cut in (
            ResponseAccumulator.P2_WARMUP - 3,
            ResponseAccumulator.P2_WARMUP,
            ResponseAccumulator.P2_WARMUP + 5,
        ):
            split = _fold([values[:cut], values[cut:]])
            assert split == mono

    def test_warmup_boundary_exhaustive_with_small_constants(self, monkeypatch):
        """Shrink the warmup/stride constants and sweep *every* cut and
        several multi-part partitions around the switchover, so the
        stride-offset arithmetic in ``ResponseAccumulator.add`` (the
        ``(first - start) + (-(first - P2_WARMUP)) % P2_STRIDE`` formula)
        is exercised at every possible chunk/warmup phase — including
        chunks that end exactly on the boundary, straddle it, or start
        mid-stride — without paying for 65k values per case."""
        monkeypatch.setattr(ResponseAccumulator, "P2_WARMUP", 16)
        monkeypatch.setattr(ResponseAccumulator, "P2_STRIDE", 3)
        rng = np.random.default_rng(42)
        values = rng.exponential(5.0, size=64)
        mono = _fold([values])
        assert mono.p2_observations == 16 + len(range(16, 64, 3))
        for cut in range(values.size + 1):
            split = _fold([values[:cut], values[cut:]])
            assert split == mono, f"cut={cut}"
        for cuts in ([5, 16, 17], [15, 16], [16, 19, 22], [1] * 3 + [30]):
            split = _fold(_partition(values, cuts))
            assert split == mono, f"cuts={cuts}"
        # Single-value chunks: every add() call lands on a different
        # warmup/stride phase.
        split = _fold([values[i : i + 1] for i in range(values.size)])
        assert split == mono

    def test_mean_is_exactly_the_serial_mean(self):
        """total is the strict left-to-right sum (what the scalar
        ``np.add.at`` carry computes), identically for any chunking."""
        rng = np.random.default_rng(7)
        values = rng.exponential(3.0, size=10_000)
        serial = 0.0
        for v in values:
            serial += float(v)
        for k in (1, 13, 997, 10**9):
            parts = [values[i : i + k] for i in range(0, values.size, k)]
            stats = _fold(parts)
            assert stats.total == serial


class TestP2Accuracy:
    @pytest.mark.parametrize("dist", ["exponential", "lognormal", "uniform"])
    def test_percentiles_near_numpy(self, dist):
        rng = np.random.default_rng(42)
        values = getattr(rng, dist)(size=50_000)
        stats = _fold([values])
        for q, est in ((50, stats.p50), (95, stats.p95), (99, stats.p99)):
            exact = float(np.percentile(values, q))
            scale = float(np.percentile(values, 99)) or 1.0
            assert abs(est - exact) < 0.05 * scale, (q, est, exact)

    def test_stride_thinning_tracks_the_tail(self):
        """Past warmup only every 8th response feeds P² — the estimate must
        still track a shifted distribution."""
        rng = np.random.default_rng(3)
        head = rng.exponential(1.0, size=ResponseAccumulator.P2_WARMUP)
        tail = rng.exponential(10.0, size=500_000)
        stats = _fold([head, tail])
        merged = np.concatenate([head, tail])
        exact = float(np.percentile(merged, 95))
        assert abs(stats.p95 - exact) < 0.15 * exact
        expected_obs = ResponseAccumulator.P2_WARMUP + tail.size // 8
        assert abs(stats.p2_observations - expected_obs) <= 1


class TestResponseStatsMerge:
    def test_exact_fields_merge(self):
        a = _fold([np.array([1.0, 5.0, 3.0])])
        b = _fold([np.array([0.5, 9.0])])
        with pytest.warns(RuntimeWarning, match="percentile"):
            merged = ResponseStats.merge([a, b])
        assert merged.count == 5
        assert merged.min == 0.5
        assert merged.max == 9.0
        assert merged.total == pytest.approx(a.total + b.total)
        # P² states cannot be combined post-hoc.
        assert math.isnan(merged.p95)
        assert merged.percentiles_lost

    def test_single_live_part_passes_through(self):
        a = _fold([np.array([1.0, 2.0])])
        empty = _fold([])
        assert ResponseStats.merge([a, empty, None]) is a

    def test_all_empty(self):
        merged = ResponseStats.merge([_fold([]), None])
        assert merged.count == 0
        assert math.isnan(merged.min) and math.isnan(merged.max)
        assert math.isnan(merged.mean)

    def test_lossy_merge_warns_once_per_chain(self):
        """The first percentile-dropping merge warns; re-merging an
        already-lossy result (pairwise epoch folds) stays silent."""
        a = _fold([np.array([1.0, 2.0])])
        b = _fold([np.array([3.0, 4.0])])
        c = _fold([np.array([5.0, 6.0])])
        with pytest.warns(RuntimeWarning, match="cannot combine"):
            first = ResponseStats.merge([a, b])
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            chained = ResponseStats.merge([first, c])
        assert chained.count == 6
        assert chained.percentiles_lost
        assert math.isnan(chained.p95)

    def test_single_part_merge_does_not_warn(self):
        a = _fold([np.array([1.0, 2.0])])
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert ResponseStats.merge([a]) is a


def _result(response_times=None, response_stats=None, completions=0):
    return SimulationResult(
        algorithm="t", duration=10.0, num_disks=1, energy=1.0,
        energy_per_disk=np.ones(1), state_durations={},
        response_times=response_times, arrivals=completions,
        completions=completions, spinups=0, spindowns=0,
        always_on_energy=1.0, response_stats=response_stats,
    )


class TestStreamingResult:
    def test_streaming_properties_answer_from_stats(self):
        values = np.array([1.0, 2.0, 3.0, 4.0])
        stats = _fold([values])
        r = _result(response_stats=stats, completions=4)
        assert r.mean_response == values.mean()
        assert r.max_response == 4.0
        assert r.median_response == stats.p50
        assert r.p95_response == stats.p95

    def test_untracked_percentile_warns_nan(self):
        stats = _fold([np.array([1.0, 2.0])])
        r = _result(response_stats=stats, completions=2)
        with pytest.warns(RuntimeWarning, match="p50/p95/p99"):
            assert math.isnan(r.response_percentile(90.0))

    def test_zero_completion_streaming_warns_nan(self):
        r = _result(response_stats=_fold([]), completions=0)
        with pytest.warns(RuntimeWarning, match="no completed requests"):
            assert math.isnan(r.mean_response)
        with pytest.warns(RuntimeWarning, match="no completed requests"):
            assert math.isnan(r.p95_response)
        assert "(no completed requests)" in r.summary()

    def test_full_mode_unaffected(self):
        r = _result(response_times=np.array([2.0, 4.0]), completions=2)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert r.mean_response == 3.0
            assert r.p95_response == pytest.approx(3.9)
