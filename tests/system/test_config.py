"""Unit tests for StorageConfig."""

import math

import pytest

from repro.disk import ServiceModel
from repro.errors import ConfigError
from repro.system import StorageConfig
from repro.units import GiB


class TestValidation:
    def test_defaults_valid(self):
        cfg = StorageConfig()
        assert cfg.num_disks == 100
        assert cfg.load_constraint == 0.8
        assert cfg.cache_policy is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_disks": 0},
            {"load_constraint": 0.0},
            {"load_constraint": 1.5},
            {"storage_utilization": 0.0},
            {"idleness_threshold": -5.0},
            {"cache_hit_latency": -1.0},
            {"cache_capacity": 0.0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            StorageConfig(**kwargs)


class TestDerived:
    def test_threshold_defaults_to_breakeven(self, spec):
        cfg = StorageConfig()
        assert cfg.threshold == pytest.approx(spec.breakeven_threshold())

    def test_explicit_threshold(self):
        assert StorageConfig(idleness_threshold=120.0).threshold == 120.0

    def test_infinite_threshold_allowed(self):
        assert math.isinf(StorageConfig(idleness_threshold=math.inf).threshold)

    def test_usable_capacity(self, spec):
        cfg = StorageConfig(storage_utilization=0.9)
        assert cfg.usable_capacity == pytest.approx(0.9 * spec.capacity)

    def test_service_model(self):
        sm = StorageConfig(service_mode="transfer").service_model()
        assert isinstance(sm, ServiceModel)
        assert sm.mode == "transfer"

    def test_with_overrides(self):
        cfg = StorageConfig().with_overrides(num_disks=7, cache_policy="lru")
        assert cfg.num_disks == 7
        assert cfg.cache_policy == "lru"
        assert cfg.cache_capacity == 16 * GiB


class TestLadderConfig:
    def test_default_has_no_ladder(self):
        cfg = StorageConfig()
        assert cfg.dpm_ladder is None
        assert cfg.ladder() is None

    def test_preset_resolves(self, spec):
        from repro.disk.dpm import DpmLadder

        cfg = StorageConfig(dpm_ladder="nap")
        ladder = cfg.ladder()
        assert isinstance(ladder, DpmLadder)
        assert [r.name for r in ladder.rungs] == ["idle", "nap", "standby"]
        # Without an explicit threshold the ladder's first entry governs.
        assert cfg.threshold == ladder.base_threshold

    def test_two_state_preset_threshold_is_breakeven(self, spec):
        cfg = StorageConfig(dpm_ladder="two_state")
        assert cfg.threshold == spec.breakeven_threshold()

    def test_explicit_threshold_scales_ladder(self):
        cfg = StorageConfig(dpm_ladder="drpm4", idleness_threshold=30.0)
        assert cfg.threshold == 30.0
        assert cfg.ladder().scaled_entries(cfg.threshold)[1] == 30.0

    def test_user_ladder_instance_accepted(self, spec):
        from repro.disk.dpm import DpmLadder, LadderRung

        ladder = DpmLadder(
            "user",
            (
                LadderRung("idle", spec.idle_power),
                LadderRung(
                    "deep", 1.0, entry=40.0, down_time=2.0,
                    down_power=5.0, wake_time=4.0, wake_power=20.0,
                ),
            ),
        )
        cfg = StorageConfig(dpm_ladder=ladder)
        assert cfg.ladder() is ladder
        assert cfg.threshold == 40.0

    def test_unknown_preset_rejected(self):
        with pytest.raises(ConfigError, match="ladder"):
            StorageConfig(dpm_ladder="bogus")

    def test_non_ladder_object_rejected(self):
        with pytest.raises(ConfigError, match="ladder"):
            StorageConfig(dpm_ladder=42)
