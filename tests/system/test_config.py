"""Unit tests for StorageConfig."""

import math

import pytest

from repro.disk import ServiceModel
from repro.errors import ConfigError
from repro.system import StorageConfig
from repro.units import GiB


class TestValidation:
    def test_defaults_valid(self):
        cfg = StorageConfig()
        assert cfg.num_disks == 100
        assert cfg.load_constraint == 0.8
        assert cfg.cache_policy is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_disks": 0},
            {"load_constraint": 0.0},
            {"load_constraint": 1.5},
            {"storage_utilization": 0.0},
            {"idleness_threshold": -5.0},
            {"cache_hit_latency": -1.0},
            {"cache_capacity": 0.0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            StorageConfig(**kwargs)


class TestDerived:
    def test_threshold_defaults_to_breakeven(self, spec):
        cfg = StorageConfig()
        assert cfg.threshold == pytest.approx(spec.breakeven_threshold())

    def test_explicit_threshold(self):
        assert StorageConfig(idleness_threshold=120.0).threshold == 120.0

    def test_infinite_threshold_allowed(self):
        assert math.isinf(StorageConfig(idleness_threshold=math.inf).threshold)

    def test_usable_capacity(self, spec):
        cfg = StorageConfig(storage_utilization=0.9)
        assert cfg.usable_capacity == pytest.approx(0.9 * spec.capacity)

    def test_service_model(self):
        sm = StorageConfig(service_mode="transfer").service_model()
        assert isinstance(sm, ServiceModel)
        assert sm.mode == "transfer"

    def test_with_overrides(self):
        cfg = StorageConfig().with_overrides(num_disks=7, cache_policy="lru")
        assert cfg.num_disks == 7
        assert cfg.cache_policy == "lru"
        assert cfg.cache_capacity == 16 * GiB
