"""Unit tests for SimulationResult's derived metrics."""

import math

import numpy as np
import pytest

from repro.disk import DiskState
from repro.system import SimulationResult


def result(**overrides):
    base = dict(
        algorithm="test",
        duration=1_000.0,
        num_disks=10,
        energy=3.6e5,
        energy_per_disk=np.full(10, 3.6e4),
        state_durations={DiskState.IDLE: 9_000.0, DiskState.STANDBY: 1_000.0},
        response_times=np.array([1.0, 2.0, 3.0, 10.0]),
        arrivals=5,
        completions=4,
        spinups=2,
        spindowns=3,
        always_on_energy=9.3 * 10 * 1_000.0,
    )
    base.update(overrides)
    return SimulationResult(**base)


class TestPower:
    def test_mean_power(self):
        assert result().mean_power == pytest.approx(360.0)

    def test_normalized_cost_and_saving(self):
        r = result()
        assert r.normalized_power_cost == pytest.approx(3.6e5 / 9.3e4)
        assert r.power_saving_normalized == pytest.approx(
            1 - 3.6e5 / 9.3e4
        )

    def test_mean_power_nan_on_non_positive_duration(self):
        # The guard matches normalized_power_cost: *non-positive*, not
        # merely falsy — a negative duration must not return a
        # sign-flipped wattage.
        assert math.isnan(result(duration=0.0).mean_power)
        assert math.isnan(result(duration=-1.0).mean_power)
        assert math.isnan(
            result(duration=-1.0, always_on_energy=-93.0).normalized_power_cost
        )

    def test_power_saving_vs(self):
        a = result(energy=100.0)
        b = result(energy=400.0)
        assert a.power_saving_vs(b) == pytest.approx(0.75)
        assert b.power_saving_vs(a) == pytest.approx(-3.0)

    def test_saving_vs_zero_energy_nan(self):
        assert math.isnan(result().power_saving_vs(result(energy=0.0)))


class TestResponse:
    def test_mean_median_max(self):
        r = result()
        assert r.mean_response == pytest.approx(4.0)
        assert r.median_response == pytest.approx(2.5)
        assert r.max_response == 10.0

    def test_percentile(self):
        assert result().response_percentile(50) == pytest.approx(2.5)

    def test_percentile_properties(self):
        r = result(response_times=np.arange(1, 101, dtype=float))
        assert r.p95_response == pytest.approx(np.percentile(r.response_times, 95))
        assert r.p99_response == pytest.approx(np.percentile(r.response_times, 99))
        assert r.p95_response == r.response_percentile(95)

    def test_empty_responses_nan(self):
        r = result(response_times=np.array([]))
        with pytest.warns(RuntimeWarning, match="no completed requests"):
            assert math.isnan(r.mean_response)
        with pytest.warns(RuntimeWarning, match="no completed requests"):
            assert math.isnan(r.median_response)
        with pytest.warns(RuntimeWarning, match="no completed requests"):
            assert math.isnan(r.max_response)
        with pytest.warns(RuntimeWarning, match="no completed requests"):
            assert math.isnan(r.response_percentile(95))
        with pytest.warns(RuntimeWarning, match="no completed requests"):
            assert math.isnan(r.p95_response)
        with pytest.warns(RuntimeWarning, match="no completed requests"):
            assert math.isnan(r.p99_response)

    def test_response_ratio(self):
        a = result(response_times=np.array([2.0]))
        b = result(response_times=np.array([4.0]))
        assert a.response_ratio_vs(b) == pytest.approx(0.5)

    def test_ratio_vs_empty_nan(self):
        a = result()
        b = result(response_times=np.array([]))
        with pytest.warns(RuntimeWarning, match="no completed requests"):
            assert math.isnan(a.response_ratio_vs(b))


class TestDiagnostics:
    def test_completion_ratio(self):
        assert result().completion_ratio == pytest.approx(0.8)

    def test_state_fraction(self):
        r = result()
        assert r.state_fraction(DiskState.IDLE) == pytest.approx(0.9)
        assert r.state_fraction(DiskState.ACTIVE) == 0.0

    def test_summary_contains_key_figures(self):
        text = result().summary()
        assert "test" in text
        assert "spin-ups" in text
        assert "response" in text
