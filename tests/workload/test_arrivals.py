"""Unit and statistical tests for arrival processes and request streams."""

import numpy as np
import pytest
from scipy import stats

from repro.errors import ConfigError
from repro.workload import (
    RequestStream,
    poisson_arrival_times,
    sample_file_ids,
    zipf_popularities,
)


class TestPoisson:
    def test_sorted_within_horizon(self, rng):
        times = poisson_arrival_times(5.0, 100.0, rng)
        assert np.all(np.diff(times) >= 0)
        assert times.min() >= 0
        assert times.max() < 100.0

    def test_count_statistics(self, rng):
        # N ~ Poisson(2500); check within 5 sigma.
        times = poisson_arrival_times(5.0, 500.0, rng)
        assert abs(len(times) - 2_500) < 5 * np.sqrt(2_500)

    def test_exponential_gaps(self, rng):
        # KS test of inter-arrival times against Exp(rate).
        times = poisson_arrival_times(2.0, 5_000.0, rng)
        gaps = np.diff(times)
        _, p_value = stats.kstest(gaps, "expon", args=(0, 1 / 2.0))
        assert p_value > 1e-4

    def test_zero_rate(self, rng):
        assert len(poisson_arrival_times(0.0, 100.0, rng)) == 0

    def test_invalid_args(self, rng):
        with pytest.raises(ConfigError):
            poisson_arrival_times(-1.0, 10.0, rng)
        with pytest.raises(ConfigError):
            poisson_arrival_times(1.0, -10.0, rng)


class TestSampleIds:
    def test_respects_distribution(self, rng):
        p = zipf_popularities(100)
        ids = sample_file_ids(p, 20_000, rng)
        counts = np.bincount(ids, minlength=100)
        # Chi-squared against the expected distribution.
        expected = p * 20_000
        mask = expected > 5
        chi2 = float(np.sum((counts[mask] - expected[mask]) ** 2 / expected[mask]))
        dof = int(mask.sum()) - 1
        assert chi2 < stats.chi2.ppf(0.9999, dof)

    def test_invalid_count(self, rng):
        with pytest.raises(ConfigError):
            sample_file_ids(np.array([1.0]), -1, rng)


class TestRequestStream:
    def test_poisson_constructor(self, rng):
        p = zipf_popularities(50)
        stream = RequestStream.poisson(p, rate=3.0, duration=200.0, rng=rng)
        assert stream.duration == 200.0
        assert stream.file_ids.max() < 50
        assert abs(stream.mean_rate - 3.0) < 1.0

    def test_iteration_yields_tuples(self):
        stream = RequestStream(
            times=np.array([1.0, 2.0]),
            file_ids=np.array([5, 7]),
            duration=10.0,
        )
        assert list(stream) == [(1.0, 5), (2.0, 7)]
        assert len(stream) == 2

    def test_unsorted_times_rejected(self):
        with pytest.raises(ConfigError):
            RequestStream(
                times=np.array([2.0, 1.0]),
                file_ids=np.array([0, 1]),
                duration=10.0,
            )

    def test_negative_times_rejected(self):
        with pytest.raises(ConfigError):
            RequestStream(
                times=np.array([-1.0]), file_ids=np.array([0]), duration=10.0
            )

    def test_duration_must_cover_arrivals(self):
        with pytest.raises(ConfigError):
            RequestStream(
                times=np.array([5.0]), file_ids=np.array([0]), duration=3.0
            )

    def test_merge_sorts(self):
        a = RequestStream(
            times=np.array([1.0, 5.0]), file_ids=np.array([0, 1]), duration=10.0
        )
        b = RequestStream(
            times=np.array([3.0]), file_ids=np.array([2]), duration=8.0
        )
        merged = RequestStream.merge([a, b])
        assert merged.times.tolist() == [1.0, 3.0, 5.0]
        assert merged.file_ids.tolist() == [0, 2, 1]
        assert merged.duration == 10.0

    def test_merge_empty_list_rejected(self):
        with pytest.raises(ConfigError):
            RequestStream.merge([])

    def test_merge_clears_thinning_factor(self):
        # Regression: merge used to drop the field implicitly; it is now an
        # explicit, documented decision — a merged stream is not a thinning
        # of any single parent, even when every input carries a factor.
        base = RequestStream(
            times=np.arange(10, dtype=float),
            file_ids=np.arange(10),
            duration=10.0,
        )
        a = base.scaled(0.5)
        b = base.scaled(0.5)
        assert a.thinning_factor == pytest.approx(0.5)
        merged = RequestStream.merge([a, b])
        assert merged.thinning_factor is None

    def test_mean_rate_zero_for_empty_streams(self):
        # Regression: a zero-duration empty stream returned NaN, which
        # poisoned downstream allocate(rate=...) calls.
        empty_zero = RequestStream(
            times=np.array([]), file_ids=np.array([]), duration=0.0
        )
        assert empty_zero.mean_rate == 0.0
        empty_long = RequestStream(
            times=np.array([]), file_ids=np.array([]), duration=10.0
        )
        assert empty_long.mean_rate == 0.0
        merged = RequestStream.merge([empty_zero, empty_zero])
        assert merged.mean_rate == 0.0

    def test_mean_rate_nan_only_for_nonempty_zero_duration(self):
        stream = RequestStream(
            times=np.array([0.0]), file_ids=np.array([0]), duration=0.0
        )
        assert np.isnan(stream.mean_rate)

    def test_scaled_thinning(self):
        stream = RequestStream(
            times=np.arange(100, dtype=float),
            file_ids=np.arange(100),
            duration=100.0,
        )
        thin = stream.scaled(0.25)
        assert len(thin) == 25
        assert thin.duration == 100.0
        assert thin.times.tolist() == list(range(0, 100, 4))

    def test_scaled_arbitrary_factor_honored_exactly(self):
        # Regression: step = round(1/factor) turned factor=0.4 into a 0.5
        # subsample; index-based thinning keeps exactly 40 of 100.
        stream = RequestStream(
            times=np.arange(100, dtype=float),
            file_ids=np.arange(100),
            duration=100.0,
        )
        thin = stream.scaled(0.4)
        assert len(thin) == 40
        assert thin.thinning_factor == pytest.approx(0.4)
        assert np.all(np.diff(thin.times) > 0)  # still strictly ordered
        assert thin.duration == 100.0

    @pytest.mark.parametrize("factor", [0.1, 0.25, 1 / 3, 0.4, 0.7, 0.9])
    def test_scaled_count_matches_factor(self, factor):
        stream = RequestStream(
            times=np.arange(1_000, dtype=float),
            file_ids=np.arange(1_000),
            duration=1_000.0,
        )
        thin = stream.scaled(factor)
        assert len(thin) == round(1_000 * factor)
        assert thin.thinning_factor == pytest.approx(len(thin) / 1_000)

    def test_scaled_factor_keeping_zero_requests_rejected(self):
        stream = RequestStream(
            times=np.array([1.0]), file_ids=np.array([0]), duration=2.0
        )
        with pytest.raises(ConfigError, match="zero"):
            stream.scaled(0.3)

    def test_scaled_identity_returns_defensive_copy(self):
        # Regression: scaled(1.0) used to return self, so mutating the
        # "scaled" stream corrupted the parent's arrays.
        stream = RequestStream(
            times=np.array([1.0, 2.0]), file_ids=np.array([0, 1]), duration=4.0
        )
        full = stream.scaled(1.0)
        assert full is not stream
        assert full.times is not stream.times
        assert full.file_ids is not stream.file_ids
        assert full.times.tolist() == stream.times.tolist()
        assert full.file_ids.tolist() == stream.file_ids.tolist()
        assert full.duration == stream.duration
        assert full.thinning_factor == 1.0
        full.times[0] = 99.0  # must not reach the parent
        assert stream.times[0] == 1.0

    def test_scaled_empty_stream_returns_copy(self):
        stream = RequestStream(
            times=np.array([]), file_ids=np.array([]), duration=5.0
        )
        thin = stream.scaled(0.5)
        assert thin is not stream
        assert len(thin) == 0
        assert thin.duration == 5.0

    def test_scaled_invalid(self):
        stream = RequestStream(
            times=np.array([1.0]), file_ids=np.array([0]), duration=2.0
        )
        with pytest.raises(ConfigError):
            stream.scaled(0.0)

    def test_empty_stream(self):
        stream = RequestStream(
            times=np.array([]), file_ids=np.array([]), duration=10.0
        )
        assert len(stream) == 0
        assert list(stream) == []
