"""Unit tests for the Zipf-like distributions of Table 1."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.units import GB, MB
from repro.workload import (
    PAPER_THETA,
    generalized_harmonic,
    inverse_zipf_sizes,
    zipf_popularities,
)


class TestTheta:
    def test_paper_value(self):
        assert PAPER_THETA == pytest.approx(math.log(0.6) / math.log(0.4))
        assert PAPER_THETA == pytest.approx(0.5575, abs=1e-3)


class TestHarmonic:
    def test_known_values(self):
        assert generalized_harmonic(3, 1.0) == pytest.approx(1 + 0.5 + 1 / 3)
        assert generalized_harmonic(5, 0.0) == pytest.approx(5.0)
        assert generalized_harmonic(0, 1.0) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            generalized_harmonic(-1, 1.0)


class TestPopularities:
    def test_sums_to_one(self):
        p = zipf_popularities(1_000)
        assert p.sum() == pytest.approx(1.0)

    def test_descending(self):
        p = zipf_popularities(500)
        assert np.all(np.diff(p) <= 0)

    def test_zipf_formula(self):
        n, theta = 100, PAPER_THETA
        p = zipf_popularities(n, theta)
        c = 1.0 / generalized_harmonic(n, 1 - theta)
        assert p[0] == pytest.approx(c)
        assert p[9] == pytest.approx(c / 10 ** (1 - theta))

    def test_sixty_forty_skew(self):
        # theta = log0.6/log0.4 encodes: the top 40% of files receive
        # ~60% of accesses.
        p = zipf_popularities(10_000)
        top40 = p[: 4_000].sum()
        assert top40 == pytest.approx(0.6, abs=0.02)

    def test_invalid_args(self):
        with pytest.raises(ConfigError):
            zipf_popularities(0)
        with pytest.raises(ConfigError):
            zipf_popularities(10, theta=1.5)

    @given(st.integers(1, 2_000), st.floats(0.0, 0.99))
    def test_valid_distribution_property(self, n, theta):
        p = zipf_popularities(n, theta)
        assert p.shape == (n,)
        assert p.sum() == pytest.approx(1.0)
        assert np.all(p > 0)


class TestInverseSizes:
    def test_table1_min_max(self):
        # With the paper's n=40000, theta and 20 GB max, the smallest file
        # is Table 1's 188 MB.
        sizes = inverse_zipf_sizes(40_000, s_max=20 * GB)
        assert sizes.max() == pytest.approx(20 * GB)
        assert sizes.min() == pytest.approx(188 * MB, rel=0.03)

    def test_ascending_with_popularity_rank(self):
        # Index 0 = most popular = smallest (inverse relation).
        sizes = inverse_zipf_sizes(1_000)
        assert np.all(np.diff(sizes) >= 0)

    def test_clamping(self):
        sizes = inverse_zipf_sizes(100, s_max=1 * GB, s_min=0.5 * GB)
        assert sizes.min() == pytest.approx(0.5 * GB)

    def test_invalid_args(self):
        with pytest.raises(ConfigError):
            inverse_zipf_sizes(0)
        with pytest.raises(ConfigError):
            inverse_zipf_sizes(10, s_max=-1.0)
        with pytest.raises(ConfigError):
            inverse_zipf_sizes(10, s_max=1.0, s_min=2.0)

    def test_footprint_matches_paper(self):
        # Table 1: "Space requirement for all files: 12.86 TB".  The exact
        # sum at the paper's parameters lands within a few percent.
        sizes = inverse_zipf_sizes(40_000, s_max=20 * GB, s_min=188 * MB)
        assert sizes.sum() / 1e12 == pytest.approx(12.86, rel=0.05)
