"""Unit tests for trace construction and CSV round-tripping."""

import numpy as np
import pytest

from repro.errors import TraceFormatError
from repro.workload import Trace, load_trace_csv, save_trace_csv


def tiny_trace():
    return Trace.from_requests(
        name="tiny",
        sizes=np.array([100.0, 200.0, 300.0]),
        times=np.array([1.0, 2.0, 2.5]),
        file_ids=np.array([0, 2, 0]),
        duration=10.0,
    )


class TestFromRequests:
    def test_popularities_from_counts(self):
        trace = tiny_trace()
        p = trace.catalog.popularities
        assert p[0] == pytest.approx(2 / 3, rel=1e-6)
        assert p[2] == pytest.approx(1 / 3, rel=1e-6)
        assert p[1] > 0  # unreferenced file keeps vanishing mass
        assert p.sum() == pytest.approx(1.0)

    def test_out_of_range_ids_rejected(self):
        with pytest.raises(TraceFormatError):
            Trace.from_requests(
                "bad",
                sizes=np.array([1.0]),
                times=np.array([0.0]),
                file_ids=np.array([5]),
                duration=1.0,
            )

    def test_stats(self):
        trace = tiny_trace()
        assert trace.n_files == 3
        assert trace.n_requests == 3
        assert trace.mean_request_rate() == pytest.approx(0.3)

    def test_empty_trace_uniform_popularity(self):
        trace = Trace.from_requests(
            "empty",
            sizes=np.array([1.0, 1.0]),
            times=np.array([]),
            file_ids=np.array([], dtype=np.int64),
            duration=5.0,
        )
        assert trace.catalog.popularities.tolist() == [0.5, 0.5]


class TestCsvRoundtrip:
    def test_roundtrip(self, tmp_path):
        trace = tiny_trace()
        path = tmp_path / "tiny.csv"
        save_trace_csv(trace, path)
        loaded = load_trace_csv(path)
        assert loaded.name == "tiny"
        assert loaded.n_files == 3
        assert np.allclose(loaded.catalog.sizes, trace.catalog.sizes)
        assert np.allclose(loaded.stream.times, trace.stream.times)
        assert np.array_equal(loaded.stream.file_ids, trace.stream.file_ids)
        assert loaded.stream.duration == trace.stream.duration

    def test_missing_files_section(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("# requests\ntime,file_id\n1.0,0\n")
        with pytest.raises(TraceFormatError):
            load_trace_csv(path)

    def test_data_before_section(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("1.0,0\n")
        with pytest.raises(TraceFormatError):
            load_trace_csv(path)

    def test_non_dense_ids(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text(
            "# files\nfile_id,size_bytes\n0,1.0\n2,2.0\n# requests\ntime,file_id\n"
        )
        with pytest.raises(TraceFormatError, match="dense"):
            load_trace_csv(path)

    def test_malformed_number(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("# files\nfile_id,size_bytes\n0,xyz\n")
        with pytest.raises(TraceFormatError):
            load_trace_csv(path)

    def test_unknown_marker(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("# nonsense\n")
        with pytest.raises(TraceFormatError):
            load_trace_csv(path)

    def test_bad_row_width(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("# files\nfile_id,size_bytes\n0,1.0,extra\n")
        with pytest.raises(TraceFormatError):
            load_trace_csv(path)


class TestRoundtripProperty:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    @settings(max_examples=25)
    @given(
        sizes=st.lists(st.floats(1.0, 1e12), min_size=1, max_size=20),
        raw_times=st.lists(st.floats(0.0, 1e6), min_size=0, max_size=30),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_random_traces_roundtrip(self, tmp_path_factory, sizes, raw_times, seed):
        import numpy as np

        rng = np.random.default_rng(seed)
        times = np.sort(np.asarray(raw_times, dtype=float))
        ids = rng.integers(0, len(sizes), size=times.size)
        trace = Trace.from_requests(
            "prop",
            sizes=np.asarray(sizes),
            times=times,
            file_ids=ids,
            duration=float(times[-1]) + 1.0 if times.size else 1.0,
        )
        path = tmp_path_factory.mktemp("traces") / "prop.csv"
        save_trace_csv(trace, path)
        loaded = load_trace_csv(path)
        assert np.allclose(loaded.catalog.sizes, trace.catalog.sizes)
        assert np.allclose(loaded.stream.times, trace.stream.times)
        assert np.array_equal(loaded.stream.file_ids, trace.stream.file_ids)
        assert loaded.stream.duration == trace.stream.duration
