"""Tests for nonhomogeneous (diurnal) arrival generation."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.units import DAY, HOUR
from repro.workload.diurnal import (
    diurnal_rate,
    nonhomogeneous_stream,
    thinned_arrival_times,
)
from repro.workload.zipf import zipf_popularities


class TestDiurnalRate:
    def test_peak_and_trough(self):
        rate = diurnal_rate(1.0, amplitude=0.5, peak_hour=14.0)
        assert rate(14 * HOUR) == pytest.approx(1.5)
        assert rate(2 * HOUR) == pytest.approx(0.5)

    def test_mean_over_period(self):
        rate = diurnal_rate(2.0, amplitude=0.8)
        ts = np.linspace(0, DAY, 10_001)
        mean = np.mean([rate(t) for t in ts])
        assert mean == pytest.approx(2.0, rel=0.01)

    def test_never_negative(self):
        rate = diurnal_rate(1.0, amplitude=1.0)
        ts = np.linspace(0, DAY, 1_001)
        assert all(rate(t) >= 0 for t in ts)

    def test_validation(self):
        with pytest.raises(ConfigError):
            diurnal_rate(-1.0)
        with pytest.raises(ConfigError):
            diurnal_rate(1.0, amplitude=1.5)
        with pytest.raises(ConfigError):
            diurnal_rate(1.0, period=0)


class TestThinning:
    def test_constant_rate_reduces_to_poisson(self, rng):
        times = thinned_arrival_times(lambda t: 2.0, 2.0, 5_000.0, rng)
        assert abs(len(times) - 10_000) < 5 * np.sqrt(10_000)
        assert np.all(np.diff(times) >= 0)

    def test_intensity_follows_profile(self, rng):
        rate = diurnal_rate(1.0, amplitude=0.8, peak_hour=12.0)
        times = thinned_arrival_times(rate, 2.0, 10 * DAY, rng)
        # Compare day vs night halves (peak at noon).
        tod = times % DAY
        day = np.sum((tod > 6 * HOUR) & (tod < 18 * HOUR))
        night = len(times) - day
        assert day > 2 * night

    def test_rate_above_peak_rejected(self, rng):
        with pytest.raises(ConfigError, match="peak"):
            thinned_arrival_times(lambda t: 5.0, 1.0, 100.0, rng)

    def test_negative_rate_rejected(self, rng):
        with pytest.raises(ConfigError):
            thinned_arrival_times(lambda t: -1.0, 1.0, 100.0, rng)

    def test_invalid_args(self, rng):
        with pytest.raises(ConfigError):
            thinned_arrival_times(lambda t: 1.0, 0.0, 100.0, rng)
        with pytest.raises(ConfigError):
            thinned_arrival_times(lambda t: 1.0, 1.0, -1.0, rng)


class TestStream:
    def test_valid_request_stream(self, rng):
        pops = zipf_popularities(100)
        rate = diurnal_rate(0.5)
        stream = nonhomogeneous_stream(pops, rate, 1.0, 2 * DAY, rng)
        assert stream.duration == 2 * DAY
        assert stream.file_ids.max() < 100
        # Mean rate close to the profile's mean.
        assert stream.mean_rate == pytest.approx(0.5, rel=0.1)

    def test_deterministic(self):
        pops = zipf_popularities(50)
        rate = diurnal_rate(0.5)
        a = nonhomogeneous_stream(pops, rate, 1.0, DAY, rng=9)
        b = nonhomogeneous_stream(pops, rate, 1.0, DAY, rng=9)
        assert np.array_equal(a.times, b.times)

    def test_end_to_end_simulation(self, rng):
        # A diurnal stream driven through the full system.
        from repro.system import StorageConfig, run_policy
        from repro.workload import FileCatalog

        catalog = FileCatalog.from_zipf(n=300, s_max=1e9)
        rate = diurnal_rate(0.2, amplitude=0.9)
        stream = nonhomogeneous_stream(
            catalog.popularities, rate, 0.4, 4 * HOUR, rng
        )
        cfg = StorageConfig(num_disks=12, load_constraint=0.8)
        res = run_policy(catalog, stream, "pack", cfg)
        assert res.arrivals == len(stream)
        assert res.energy > 0
