"""Chunked workload streams: protocol validation, equivalence to the
monolithic constructors, and the bounded-memory trace reader."""

import numpy as np
import pytest

from repro.disk.drive import READ, WRITE
from repro.errors import ConfigError, TraceFormatError
from repro.workload import (
    ChunkedDiurnalStream,
    ChunkedMixedStream,
    ChunkedNerscStream,
    ChunkedPoissonStream,
    ChunkedTraceStream,
    MixedWorkloadParams,
    NerscTraceParams,
    RequestStream,
    StreamChunk,
    Trace,
    generate_mixed_workload_chunked,
    load_trace_csv,
    save_trace_csv,
)
from repro.workload.catalog import FileCatalog
from repro.workload.mixed import MixedRequestStream


def _catalog(n=20, seed=0):
    rng = np.random.default_rng(seed)
    sizes = rng.uniform(1e6, 1e8, size=n)
    pops = rng.dirichlet(np.ones(n))
    return FileCatalog(sizes=sizes, popularities=pops)


def _drain(chunked):
    """Concatenate every chunk of one iter_chunks() pass."""
    times, ids, kinds = [], [], []
    has_kinds = False
    for chunk in chunked.iter_chunks():
        times.append(chunk.times)
        ids.append(chunk.file_ids)
        if chunk.kinds is not None:
            has_kinds = True
            kinds.append(chunk.kinds)
    t = np.concatenate(times) if times else np.empty(0)
    f = np.concatenate(ids) if ids else np.empty(0, np.int64)
    k = np.concatenate(kinds) if has_kinds else None
    return t, f, k


class TestStreamChunk:
    def test_validates_alignment(self):
        with pytest.raises(ConfigError, match="equal-length"):
            StreamChunk(times=[1.0, 2.0], file_ids=[0])

    def test_validates_monotonicity(self):
        with pytest.raises(ConfigError, match="non-decreasing"):
            StreamChunk(times=[2.0, 1.0], file_ids=[0, 1])

    def test_kinds_and_sizes_align(self):
        with pytest.raises(ConfigError, match="kinds"):
            StreamChunk(times=[1.0], file_ids=[0], kinds=["read", "read"])
        with pytest.raises(ConfigError, match="sizes"):
            StreamChunk(times=[1.0], file_ids=[0], sizes=[1.0, 2.0])

    def test_with_sizes_resolves_catalog(self):
        chunk = StreamChunk(times=[0.0, 1.0], file_ids=[2, 0])
        filled = chunk.with_sizes(np.array([10.0, 20.0, 30.0]))
        assert np.array_equal(filled.sizes, [30.0, 10.0])


class TestChunkedStreamView:
    def test_chunks_tile_the_parent_exactly(self):
        cat = _catalog()
        stream = RequestStream.poisson(cat.popularities, 2.0, 500.0, rng=3)
        for k in (1, 7, 1000, 10**9):
            view = stream.chunks(k)
            t, f, kinds = _drain(view)
            assert np.array_equal(t, stream.times)
            assert np.array_equal(f, stream.file_ids)
            assert kinds is None
            assert len(view) == len(stream)
            assert view.duration == stream.duration

    def test_mixed_view_keeps_kinds(self):
        cat = _catalog()
        stream = MixedRequestStream(
            times=[0.0, 1.0, 2.0],
            file_ids=[0, 1, 2],
            kinds=[READ, WRITE, READ],
            duration=10.0,
        )
        t, f, kinds = _drain(stream.chunks(2))
        assert np.array_equal(t, stream.times)
        assert list(kinds) == [READ, WRITE, READ]

    def test_view_hides_times(self):
        """storage.py routes on this: a chunked view must not look
        array-backed."""
        cat = _catalog()
        stream = RequestStream.poisson(cat.popularities, 1.0, 100.0, rng=0)
        assert not hasattr(stream.chunks(10), "times")

    def test_rejects_bad_chunk_size(self):
        cat = _catalog()
        stream = RequestStream.poisson(cat.popularities, 1.0, 100.0, rng=0)
        with pytest.raises(ConfigError, match="chunk_size"):
            stream.chunks(0)
        with pytest.raises(ConfigError, match="chunk_size"):
            stream.chunks(2.5)


class TestChunkedPoisson:
    def test_reiteration_is_identical(self):
        cat = _catalog()
        s = ChunkedPoissonStream(
            cat.popularities, rate=3.0, duration=400.0, chunk_size=64, seed=9
        )
        t1, f1, _ = _drain(s)
        t2, f2, _ = _drain(s)
        assert np.array_equal(t1, t2)
        assert np.array_equal(f1, f2)

    def test_none_seed_still_reiterable(self):
        cat = _catalog()
        s = ChunkedPoissonStream(
            cat.popularities, rate=3.0, duration=200.0, chunk_size=64,
            seed=None,
        )
        t1, _, _ = _drain(s)
        t2, _, _ = _drain(s)
        assert np.array_equal(t1, t2)

    def test_rejects_generator_seed(self):
        cat = _catalog()
        with pytest.raises(ConfigError, match="Generator"):
            ChunkedPoissonStream(
                cat.popularities, 1.0, 100.0, seed=np.random.default_rng(0)
            )

    def test_globally_sorted_and_rate_plausible(self):
        cat = _catalog()
        rate, duration = 5.0, 2000.0
        s = ChunkedPoissonStream(
            cat.popularities, rate, duration, chunk_size=256, seed=4
        )
        t, f, _ = _drain(s)
        assert np.all(np.diff(t) >= 0)
        assert np.all((t >= 0) & (t < duration))
        # ~4 sigma band around the Poisson mean.
        mean = rate * duration
        assert abs(t.size - mean) < 4 * np.sqrt(mean)
        assert f.min() >= 0 and f.max() < cat.n


class TestChunkedDiurnal:
    def test_thinning_respects_rate_fn(self):
        cat = _catalog()
        rate_fn = lambda t: 2.0 + 2.0 * np.sin(2 * np.pi * t / 500.0) ** 2
        s = ChunkedDiurnalStream(
            cat.popularities, rate_fn, peak_rate=4.0, duration=3000.0,
            chunk_size=512, seed=11,
        )
        t, _, _ = _drain(s)
        assert np.all(np.diff(t) >= 0)
        mean = 3.0 * 3000.0  # time-average of rate_fn is 3.0
        assert abs(t.size - mean) < 5 * np.sqrt(mean)

    def test_rate_fn_exceeding_peak_raises(self):
        cat = _catalog()
        s = ChunkedDiurnalStream(
            cat.popularities, lambda t: 10.0, peak_rate=1.0, duration=500.0,
            chunk_size=64, seed=0,
        )
        with pytest.raises(ConfigError, match="peak_rate"):
            _drain(s)


class TestChunkedMixed:
    def test_generate_matches_contract(self):
        cat = _catalog(n=30, seed=5)
        params = MixedWorkloadParams(
            write_fraction=0.3, new_file_fraction=0.4,
            arrival_rate=2.0, duration=3000.0, seed=21,
        )
        extended, stream = generate_mixed_workload_chunked(cat, params)
        assert isinstance(stream, ChunkedMixedStream)
        assert extended.n == cat.n + stream.n_new_files
        t, f, kinds = _drain(stream)
        assert np.all(np.diff(t) >= 0)
        assert f.max() < extended.n
        # Every new file is written exactly once, in id order.
        new_mask = f >= cat.n
        assert np.array_equal(
            f[new_mask], cat.n + np.arange(stream.n_new_files)
        )
        assert set(kinds[new_mask]) <= {WRITE}
        # Write fraction lands near the requested mix.
        wf = float(np.mean(kinds == WRITE))
        assert abs(wf - params.write_fraction) < 0.05
        # Re-iteration replays the same sequence.
        t2, f2, k2 = _drain(stream)
        assert np.array_equal(t, t2)
        assert np.array_equal(f, f2)
        assert np.array_equal(kinds, k2)


class TestChunkedNersc:
    def test_statistics_and_reiteration(self):
        params = NerscTraceParams(
            n_files=300, n_requests=1500, duration=5000.0, seed=6
        )
        s = ChunkedNerscStream(params, chunk_size=256)
        assert s.catalog.n == params.n_files
        t, f, _ = _drain(s)
        assert np.all(np.diff(t) >= 0)
        # Every file's base request is present at least once.
        assert np.unique(f).size == params.n_files
        # Request count within a few sigma of the target.
        assert abs(t.size - params.n_requests) < 5 * np.sqrt(params.n_requests)
        t2, f2, _ = _drain(s)
        assert np.array_equal(t, t2)
        assert np.array_equal(f, f2)


class TestChunkedTrace:
    def _write_trace(self, tmp_path, times, ids, sizes=None, duration=None):
        sizes = sizes if sizes is not None else np.full(
            int(max(ids)) + 1 if len(ids) else 1, 1e6
        )
        trace = Trace.from_requests(
            "t", sizes, np.asarray(times, float), np.asarray(ids, np.int64),
            duration if duration is not None else (times[-1] if len(times) else 0.0),
        )
        path = tmp_path / "t.csv"
        save_trace_csv(trace, path)
        return path

    def test_matches_monolithic_reader(self, tmp_path):
        rng = np.random.default_rng(2)
        times = np.sort(rng.uniform(0, 300, size=500))
        ids = rng.integers(0, 12, size=500)
        path = self._write_trace(tmp_path, times, ids, duration=300.0)
        mono = load_trace_csv(path)
        chunked = ChunkedTraceStream(path, chunk_size=64)
        t, f, kinds = _drain(chunked)
        assert np.array_equal(t, mono.stream.times)
        assert np.array_equal(f, mono.stream.file_ids)
        assert kinds is None
        assert chunked.duration == mono.stream.duration
        assert len(chunked) == len(mono.stream)
        assert np.array_equal(chunked.catalog.sizes, mono.catalog.sizes)
        np.testing.assert_allclose(
            chunked.catalog.popularities, mono.catalog.popularities
        )

    def test_non_monotonic_reports_line(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text(
            "# trace: bad\n# duration: 10.0\n# files\n"
            "file_id,size_bytes\n0,1000.0\n"
            "# requests\ntime,file_id\n5.0,0\n3.0,0\n"
        )
        with pytest.raises(TraceFormatError, match=r"bad\.csv:9"):
            ChunkedTraceStream(path)

    def test_rejects_bad_chunk_size(self, tmp_path):
        path = self._write_trace(tmp_path, [1.0], [0], duration=2.0)
        with pytest.raises(TraceFormatError, match="chunk_size"):
            ChunkedTraceStream(path, chunk_size=0)

    def test_event_engine_iteration(self, tmp_path):
        path = self._write_trace(tmp_path, [1.0, 2.0, 3.0], [0, 0, 0],
                                 duration=5.0)
        chunked = ChunkedTraceStream(path, chunk_size=2)
        assert list(chunked) == [(1.0, 0), (2.0, 0), (3.0, 0)]
