"""Unit tests for the file catalog."""

import numpy as np
import pytest

from repro.disk import ST3500630AS, ServiceModel
from repro.errors import ConfigError
from repro.units import GB
from repro.workload import FileCatalog


class TestValidation:
    def test_shape_mismatch(self):
        with pytest.raises(ConfigError):
            FileCatalog(sizes=np.ones(3), popularities=np.ones(2) / 2)

    def test_popularities_must_normalize(self):
        with pytest.raises(ConfigError):
            FileCatalog(sizes=np.ones(2), popularities=np.array([0.3, 0.3]))

    def test_negative_sizes_rejected(self):
        with pytest.raises(ConfigError):
            FileCatalog(
                sizes=np.array([-1.0, 1.0]),
                popularities=np.array([0.5, 0.5]),
            )

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            FileCatalog(sizes=np.array([]), popularities=np.array([]))


class TestFromZipf:
    def test_inverse_correlation(self):
        cat = FileCatalog.from_zipf(n=500, correlation="inverse")
        assert cat.size_popularity_correlation() < 0

    def test_direct_correlation(self):
        cat = FileCatalog.from_zipf(n=500, correlation="direct")
        assert cat.size_popularity_correlation() > 0

    def test_none_correlation_near_zero(self):
        cat = FileCatalog.from_zipf(n=5_000, correlation="none", rng=1)
        assert abs(cat.size_popularity_correlation()) < 0.1

    def test_none_correlation_deterministic_with_seed(self):
        a = FileCatalog.from_zipf(n=100, correlation="none", rng=7)
        b = FileCatalog.from_zipf(n=100, correlation="none", rng=7)
        assert np.array_equal(a.sizes, b.sizes)

    def test_unknown_correlation(self):
        with pytest.raises(ConfigError):
            FileCatalog.from_zipf(n=10, correlation="sideways")


class TestDerived:
    def test_totals(self, small_catalog):
        assert small_catalog.n == 200
        assert small_catalog.total_bytes == pytest.approx(
            small_catalog.sizes.sum()
        )
        assert small_catalog.mean_size == pytest.approx(
            small_catalog.sizes.mean()
        )

    def test_request_weighted_mean_below_unweighted(self, small_catalog):
        # Inverse correlation: popular files are small, so the weighted
        # mean is below the plain mean.
        assert (
            small_catalog.request_weighted_mean_size
            < small_catalog.mean_size
        )

    def test_loads_and_total_load(self, small_catalog):
        service = ServiceModel(ST3500630AS)
        loads = small_catalog.loads(2.0, service)
        assert loads.shape == (200,)
        assert small_catalog.total_load(2.0, service) == pytest.approx(
            loads.sum()
        )

    def test_min_disks_for_space(self, small_catalog):
        disks = small_catalog.min_disks_for_space(500 * GB)
        assert disks == int(np.ceil(small_catalog.total_bytes / (500 * GB)))
        with pytest.raises(ConfigError):
            small_catalog.min_disks_for_space(0)
