"""Tests for the read/write mixed workload (paper §6 future work)."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.workload import (
    FileCatalog,
    MixedRequestStream,
    MixedWorkloadParams,
    generate_mixed_workload,
)


@pytest.fixture
def catalog():
    return FileCatalog.from_zipf(n=100, s_max=1e9)


class TestParams:
    def test_validation(self):
        with pytest.raises(ConfigError):
            MixedWorkloadParams(write_fraction=1.5)
        with pytest.raises(ConfigError):
            MixedWorkloadParams(new_file_fraction=-0.1)
        with pytest.raises(ConfigError):
            MixedWorkloadParams(duration=0)


class TestGenerate:
    def test_write_fraction_approximate(self, catalog):
        _, stream = generate_mixed_workload(
            catalog,
            MixedWorkloadParams(
                write_fraction=0.3, arrival_rate=2.0, duration=2_000, seed=1
            ),
        )
        assert stream.write_fraction == pytest.approx(0.3, abs=0.05)

    def test_new_files_extend_catalog(self, catalog):
        extended, stream = generate_mixed_workload(
            catalog,
            MixedWorkloadParams(
                write_fraction=0.5, new_file_fraction=1.0,
                arrival_rate=1.0, duration=1_000, seed=2,
            ),
        )
        n_new = extended.n - catalog.n
        assert n_new > 0
        # New file ids appear exactly once, as writes.
        new_ids = stream.file_ids[stream.file_ids >= catalog.n]
        assert len(np.unique(new_ids)) == len(new_ids) == n_new
        assert extended.popularities.sum() == pytest.approx(1.0)

    def test_zero_writes_keeps_catalog(self, catalog):
        extended, stream = generate_mixed_workload(
            catalog,
            MixedWorkloadParams(write_fraction=0.0, seed=3),
        )
        assert extended is catalog
        assert stream.write_fraction == 0.0

    def test_reads_only_projection(self, catalog):
        _, stream = generate_mixed_workload(
            catalog,
            MixedWorkloadParams(write_fraction=0.4, seed=4),
        )
        reads = stream.reads_only()
        assert len(reads) == int(np.sum(stream.kinds == "read"))

    def test_iteration_yields_triples(self, catalog):
        _, stream = generate_mixed_workload(
            catalog, MixedWorkloadParams(seed=5, duration=500)
        )
        t, fid, kind = next(iter(stream))
        assert kind in ("read", "write")

    def test_misaligned_arrays_rejected(self):
        with pytest.raises(ConfigError):
            MixedRequestStream(
                times=np.array([1.0]),
                file_ids=np.array([0, 1]),
                kinds=np.array(["read"]),
                duration=2.0,
            )


class TestEndToEnd:
    def test_mixed_stream_through_storage_system(self, catalog):
        from repro.system import StorageConfig, StorageSystem, allocate

        extended, stream = generate_mixed_workload(
            catalog,
            MixedWorkloadParams(
                write_fraction=0.3, new_file_fraction=0.5,
                arrival_rate=0.5, duration=1_000, seed=6,
            ),
        )
        cfg = StorageConfig(num_disks=10, load_constraint=0.8)
        alloc = allocate(catalog, "pack", cfg, 0.5)
        mapping = np.full(extended.n, -1, dtype=np.int64)
        mapping[: catalog.n] = alloc.mapping(catalog.n)
        system = StorageSystem(extended, mapping, cfg)
        result = system.run(stream, duration=stream.duration + 100.0)
        assert result.arrivals == len(stream)
        assert result.completions == result.arrivals
        assert system.dispatcher.write_count == int(
            np.sum(stream.kinds == "write")
        )
        # All new files got allocated somewhere on write.
        assert np.all(system.dispatcher.mapping >= 0) or np.all(
            system.dispatcher.mapping[stream.file_ids] >= 0
        )
