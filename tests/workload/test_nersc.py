"""Tests for the NERSC-like trace synthesizer against the published stats."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.units import DAY, MB
from repro.workload import NerscTraceParams, nersc_statistics, synthesize_nersc_trace
from repro.workload.nersc import calibrate_size_exponent


@pytest.fixture(scope="module")
def small_trace():
    # 1/20th scale keeps the suite fast; statistics scale linearly.
    return synthesize_nersc_trace(NerscTraceParams(seed=1).scaled(0.05))


class TestParams:
    def test_defaults_match_paper(self):
        p = NerscTraceParams()
        assert p.n_files == 88_631
        assert p.n_requests == 115_832
        assert p.duration == 30 * DAY
        assert p.mean_size == 544 * MB

    def test_validation(self):
        with pytest.raises(ConfigError):
            NerscTraceParams(n_requests=10, n_files=100)
        with pytest.raises(ConfigError):
            NerscTraceParams(min_size=0)
        with pytest.raises(ConfigError):
            NerscTraceParams(mean_size=1e15)
        with pytest.raises(ConfigError):
            NerscTraceParams(batch_fraction=1.5)
        with pytest.raises(ConfigError):
            NerscTraceParams(batch_mean=1)

    def test_scaled_preserves_duration(self):
        p = NerscTraceParams().scaled(0.1)
        assert p.duration == 30 * DAY
        assert p.n_files == 8_863
        assert p.n_requests < 11_584 + 8_863 + 1


class TestCalibration:
    def test_calibrated_mean(self):
        beta = calibrate_size_exponent(544 * MB, 1 * MB, 20_000 * MB)
        from repro.workload.nersc import _bounded_powerlaw_mean

        assert _bounded_powerlaw_mean(beta, 1 * MB, 20_000 * MB) == pytest.approx(
            544 * MB, rel=1e-6
        )

    def test_unreachable_mean_rejected(self):
        with pytest.raises(ConfigError):
            calibrate_size_exponent(0.99e6, 1e6, 2e6)


class TestTraceStatistics:
    def test_counts_exact(self, small_trace):
        params = NerscTraceParams(seed=1).scaled(0.05)
        assert small_trace.n_files == params.n_files
        assert small_trace.n_requests == params.n_requests

    def test_every_file_requested(self, small_trace):
        requested = np.unique(small_trace.stream.file_ids)
        assert requested.size == small_trace.n_files

    def test_mean_size_exact(self, small_trace):
        assert small_trace.catalog.sizes.mean() == pytest.approx(
            544 * MB, rel=1e-9
        )

    def test_no_size_frequency_correlation(self, small_trace):
        stats = nersc_statistics(small_trace)
        assert abs(stats["size_frequency_correlation"]) < 0.1

    def test_loglog_histogram_decreases(self, small_trace):
        # §5.1: proportion per size bin decreases ~linearly in log-log.
        sizes = small_trace.catalog.sizes
        edges = np.geomspace(sizes.min(), sizes.max() + 1, 20)
        counts, _ = np.histogram(sizes, bins=edges)
        centers = np.sqrt(edges[:-1] * edges[1:])
        mask = counts > 0
        slope = np.polyfit(np.log(centers[mask]), np.log(counts[mask]), 1)[0]
        assert slope < -0.2

    def test_batch_sessions_cluster_same_bin_sizes(self, small_trace):
        # Consecutive requests seconds apart should frequently target
        # similar-size files (the batched-session phenomenon of §3.2).
        times = small_trace.stream.times
        ids = small_trace.stream.file_ids
        sizes = small_trace.catalog.sizes
        gaps = np.diff(times)
        close = gaps < 30.0  # within a session
        if close.sum() < 10:
            pytest.skip("trace too small for session analysis")
        a = sizes[ids[:-1][close]]
        b = sizes[ids[1:][close]]
        ratio = np.maximum(a, b) / np.minimum(a, b)
        # Many close pairs are same-bin (size ratio < the ~1.13 bin width
        # factor wiggle room: allow 2x).
        assert np.mean(ratio < 2.0) > 0.4

    def test_deterministic(self):
        p = NerscTraceParams(seed=5).scaled(0.02)
        a = synthesize_nersc_trace(p)
        b = synthesize_nersc_trace(p)
        assert np.array_equal(a.stream.times, b.stream.times)
        assert np.array_equal(a.catalog.sizes, b.catalog.sizes)

    def test_statistics_keys(self, small_trace):
        stats = nersc_statistics(small_trace)
        for key in (
            "distinct_files",
            "requests",
            "duration_days",
            "mean_rate_per_sec",
            "mean_size_mb",
            "footprint_tb",
            "min_disks_for_space",
        ):
            assert key in stats
        assert stats["duration_days"] == pytest.approx(30.0)

    def test_full_scale_params_footprint(self):
        # Don't synthesize the full trace here (slow-ish); check the
        # arithmetic instead: 88631 files x 544 MB ~ 48 TB ~ 97 disks.
        p = NerscTraceParams()
        assert p.n_files * p.mean_size / 500e9 == pytest.approx(96.4, abs=1)
