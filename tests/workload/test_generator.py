"""Unit tests for the Table 1 workload generator."""

import pytest

from repro.errors import ConfigError
from repro.units import GB, MB, TB
from repro.workload import (
    SyntheticWorkloadParams,
    generate_workload,
    table1_summary,
)


class TestParams:
    def test_defaults_match_table1(self):
        p = SyntheticWorkloadParams()
        assert p.n_files == 40_000
        assert p.s_max == 20 * GB
        assert p.s_min == 188 * MB
        assert p.duration == 4_000.0

    def test_validation(self):
        with pytest.raises(ConfigError):
            SyntheticWorkloadParams(n_files=0)
        with pytest.raises(ConfigError):
            SyntheticWorkloadParams(duration=0)
        with pytest.raises(ConfigError):
            SyntheticWorkloadParams(arrival_rate=-1)

    def test_scaled(self):
        p = SyntheticWorkloadParams().scaled(0.1)
        assert p.n_files == 4_000
        assert p.arrival_rate == SyntheticWorkloadParams().arrival_rate
        with pytest.raises(ConfigError):
            SyntheticWorkloadParams().scaled(0)


class TestGenerate:
    def test_full_scale_catalog_matches_table1(self):
        wl = generate_workload(
            SyntheticWorkloadParams(arrival_rate=6, duration=300)
        )
        cat = wl.catalog
        assert cat.n == 40_000
        assert cat.sizes.min() == pytest.approx(188 * MB, rel=0.01)
        assert cat.sizes.max() == pytest.approx(20 * GB)
        # Paper: 12.86 TB; exact sum lands within a few percent.
        assert cat.total_bytes == pytest.approx(12.86 * TB, rel=0.05)

    def test_stream_rate(self):
        wl = generate_workload(
            SyntheticWorkloadParams(
                n_files=1_000, arrival_rate=5.0, duration=2_000, seed=3
            )
        )
        assert wl.stream.mean_rate == pytest.approx(5.0, rel=0.1)

    def test_deterministic(self):
        a = generate_workload(SyntheticWorkloadParams(n_files=500, seed=9))
        b = generate_workload(SyntheticWorkloadParams(n_files=500, seed=9))
        assert (a.stream.times == b.stream.times).all()
        assert (a.stream.file_ids == b.stream.file_ids).all()

    def test_different_seeds_differ(self):
        a = generate_workload(SyntheticWorkloadParams(n_files=500, seed=1))
        b = generate_workload(SyntheticWorkloadParams(n_files=500, seed=2))
        assert len(a.stream) != len(b.stream) or not (
            a.stream.times == b.stream.times
        ).all()


class TestTable1Summary:
    def test_rows_present(self):
        wl = generate_workload(
            SyntheticWorkloadParams(n_files=2_000, duration=100, seed=1)
        )
        rows = table1_summary(wl)
        assert "n = Number of files" in rows
        assert "Space requirement" in rows
        assert "theta = 0.5575" in rows["p_i = Access frequency"]
        assert rows["Number of disks"] == "100"
