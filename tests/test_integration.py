"""End-to-end integration tests: the paper's headline claims in miniature,
plus whole-pipeline conservation and determinism properties."""

import math

import numpy as np
import pytest

from repro import (
    StorageConfig,
    generate_workload,
    run_policy,
)
from repro.disk import DiskState, PowerModel
from repro.system import allocate, simulate
from repro.units import GiB, HOUR
from repro.workload import (
    NerscTraceParams,
    SyntheticWorkloadParams,
    synthesize_nersc_trace,
)


@pytest.fixture(scope="module")
def workload():
    return generate_workload(
        SyntheticWorkloadParams(
            n_files=10_000, arrival_rate=2.0, duration=1_200.0, seed=77
        )
    )


@pytest.fixture(scope="module")
def config():
    return StorageConfig(num_disks=50, load_constraint=0.7)


@pytest.fixture(scope="module")
def packed_and_random(workload, config):
    packed = run_policy(
        workload.catalog, workload.stream, "pack", config, arrival_rate=2.0
    )
    rnd = run_policy(
        workload.catalog, workload.stream, "random", config,
        arrival_rate=2.0, rng=77,
    )
    return packed, rnd


class TestHeadlineClaims:
    def test_pack_disks_saves_power_over_random(self, packed_and_random):
        packed, rnd = packed_and_random
        saving = packed.power_saving_vs(rnd)
        assert saving > 0.3, f"expected substantial saving, got {saving:.2%}"

    def test_response_penalty_is_modest(self, packed_and_random):
        packed, rnd = packed_and_random
        ratio = packed.response_ratio_vs(rnd)
        assert 0.3 < ratio < 4.0  # paper Fig 3's range

    def test_pack_concentrates_requests(self, packed_and_random):
        packed, rnd = packed_and_random
        # Gini-style check: under pack, request counts across disks are
        # far more skewed than under random.
        def top_decile_share(res):
            counts = np.sort(res.requests_per_disk)[::-1]
            k = max(1, len(counts) // 10)
            return counts[:k].sum() / max(1, counts.sum())

        assert top_decile_share(packed) > 2 * top_decile_share(rnd)

    def test_random_spins_up_more(self, packed_and_random):
        packed, rnd = packed_and_random
        assert rnd.spinups > packed.spinups


class TestConservation:
    def test_state_time_conservation(self, workload, config):
        alloc = allocate(workload.catalog, "pack", config, 2.0)
        res = simulate(
            workload.catalog, workload.stream, alloc, config, num_disks=50
        )
        total = sum(res.state_durations.values())
        assert total == pytest.approx(res.duration * res.num_disks, rel=1e-9)

    def test_energy_equals_power_integral(self, workload, config):
        alloc = allocate(workload.catalog, "pack", config, 2.0)
        res = simulate(
            workload.catalog, workload.stream, alloc, config, num_disks=50
        )
        pm = PowerModel(config.spec)
        assert res.energy == pytest.approx(pm.energy(res.state_durations))

    def test_request_conservation(self, workload, config):
        alloc = allocate(workload.catalog, "pack", config, 2.0)
        res = simulate(
            workload.catalog, workload.stream, alloc, config, num_disks=50
        )
        assert res.arrivals == len(workload.stream)
        assert 0 <= res.arrivals - res.completions <= 60

    def test_energy_bounds(self, workload, config):
        # Total energy must lie between all-standby and all-active arrays.
        alloc = allocate(workload.catalog, "pack", config, 2.0)
        res = simulate(
            workload.catalog, workload.stream, alloc, config, num_disks=50
        )
        lower = 50 * config.spec.standby_power * res.duration
        upper = 50 * config.spec.spinup_power * res.duration
        assert lower < res.energy < upper


class TestDeterminism:
    def test_same_seed_bitwise_identical(self, workload, config):
        a = run_policy(
            workload.catalog, workload.stream, "pack", config, arrival_rate=2.0
        )
        b = run_policy(
            workload.catalog, workload.stream, "pack", config, arrival_rate=2.0
        )
        assert a.energy == b.energy
        assert np.array_equal(a.response_times, b.response_times)
        assert a.spinups == b.spinups


class TestThresholdMonotonicity:
    def test_spindowns_decrease_with_threshold(self, workload):
        counts = []
        for thr in (30.0, 300.0, 3_000.0):
            cfg = StorageConfig(
                num_disks=50, load_constraint=0.7, idleness_threshold=thr
            )
            res = run_policy(
                workload.catalog, workload.stream, "pack", cfg,
                arrival_rate=2.0,
            )
            counts.append(res.spindowns)
        assert counts[0] >= counts[1] >= counts[2]

    def test_infinite_threshold_never_sleeps(self, workload):
        cfg = StorageConfig(
            num_disks=50, load_constraint=0.7, idleness_threshold=math.inf
        )
        res = run_policy(
            workload.catalog, workload.stream, "pack", cfg, arrival_rate=2.0
        )
        assert res.spindowns == 0
        assert res.state_durations.get(DiskState.STANDBY, 0.0) == 0.0


class TestCacheIntegration:
    def test_cache_reduces_disk_traffic_on_trace(self):
        trace = synthesize_nersc_trace(
            NerscTraceParams(seed=5).scaled(0.02)
        )
        rate = trace.mean_request_rate()
        base = StorageConfig(
            load_constraint=0.8, idleness_threshold=0.5 * HOUR
        )
        alloc = allocate(trace.catalog, "pack", base, rate)
        pool = alloc.num_disks
        plain = simulate(
            trace.catalog, trace.stream, alloc,
            base.with_overrides(num_disks=pool), num_disks=pool,
        )
        cached = simulate(
            trace.catalog, trace.stream, alloc,
            base.with_overrides(
                num_disks=pool, cache_policy="lru", cache_capacity=16 * GiB
            ),
            num_disks=pool,
        )
        assert cached.cache_stats.hits > 0
        # Disk-served request count drops by exactly the hit count.
        assert (
            sum(cached.requests_per_disk)
            == sum(plain.requests_per_disk) - cached.cache_stats.hits
        )
