"""Tests for tables, series bundles and terminal plots."""

import math

import pytest

from repro.errors import ConfigError
from repro.reporting import Series, SeriesBundle, ascii_plot, format_table


class TestFormatTable:
    def test_alignment_and_headers(self):
        text = format_table(
            [[1, "abc"], [22, "d"]], headers=["num", "str"]
        )
        lines = text.splitlines()
        assert lines[0].startswith("num")
        assert "-+-" in lines[1]
        assert lines[2].startswith("1 ")

    def test_title(self):
        text = format_table([[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"
        assert text.splitlines()[1] == "========"

    def test_float_rendering(self):
        text = format_table([[0.000123456, 1234567.0, float("nan"), 0.0]])
        assert "1.235e-04" in text
        assert "1.235e+06" in text
        assert "nan" in text

    def test_empty_rows(self):
        assert format_table([]) == ""

    def test_ragged_rows_tolerated(self):
        text = format_table([[1], [2, 3]])
        assert "3" in text


class TestSeries:
    def test_add_and_arrays(self):
        s = Series("curve")
        s.add(1, 10)
        s.add(2, 20)
        xs, ys = s.as_arrays()
        assert xs.tolist() == [1.0, 2.0]
        assert ys.tolist() == [10.0, 20.0]
        assert len(s) == 2


class TestSeriesBundle:
    def make_bundle(self):
        b = SeriesBundle(title="T", x_label="x", y_label="y")
        b.add("a", 1, 10)
        b.add("a", 2, 20)
        b.add("b", 1, 100)
        return b

    def test_rows_align_on_x(self):
        b = self.make_bundle()
        rows = b.rows()
        assert rows[0][0] == 1
        assert rows[0][1] == 10
        assert rows[0][2] == 100
        assert math.isnan(rows[1][2])  # curve b has no x=2

    def test_headers(self):
        assert self.make_bundle().headers() == ["x", "a", "b"]

    def test_csv_roundtrip(self, tmp_path):
        b = self.make_bundle()
        path = tmp_path / "bundle.csv"
        b.to_csv(path)
        loaded = SeriesBundle.from_csv(path)
        assert loaded.title == "T"
        assert loaded.series["a"].y == [10.0, 20.0]
        assert loaded.series["b"].x == [1.0]

    def test_from_csv_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("nope\n")
        with pytest.raises(ConfigError):
            SeriesBundle.from_csv(path)

    def test_curve_creates_once(self):
        b = SeriesBundle(title="T", x_label="x", y_label="y")
        assert b.curve("z") is b.curve("z")


class TestAsciiPlot:
    def test_renders_markers_and_labels(self):
        text = ascii_plot(
            {"up": ([0, 1, 2], [0, 1, 2])}, width=20, height=5,
            title="Line", x_label="t", y_label="v",
        )
        assert "Line" in text
        assert "o=up" in text
        assert "t: 0 .. 2" in text

    def test_handles_empty(self):
        assert "no finite data" in ascii_plot({"e": ([], [])})

    def test_skips_non_finite(self):
        text = ascii_plot(
            {"c": ([0, 1], [float("inf"), 5.0])}, width=10, height=4
        )
        assert "5" in text  # max label present

    def test_multiple_curves_get_distinct_markers(self):
        text = ascii_plot(
            {"a": ([0], [0]), "b": ([1], [1])}, width=10, height=4
        )
        assert "o=a" in text and "x=b" in text

    def test_flat_line_does_not_crash(self):
        text = ascii_plot({"flat": ([0, 1], [3.0, 3.0])}, width=10, height=4)
        assert "flat" in text
