"""Unit tests for the baseline allocators."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import (
    best_fit,
    first_fit,
    first_fit_decreasing,
    next_fit,
    random_allocation,
    round_robin_allocation,
)
from repro.core.item import PackItem
from repro.errors import CapacityError, PackingError

coords = st.floats(min_value=1e-4, max_value=0.45)
item_lists = st.lists(st.tuples(coords, coords), min_size=1, max_size=100)


def items_from(pairs):
    return [PackItem(i, s, l) for i, (s, l) in enumerate(pairs)]


class TestRandom:
    def test_uses_fixed_pool(self):
        items = items_from([(0.01, 0.01)] * 50)
        alloc = random_allocation(items, num_disks=10, rng=1)
        assert alloc.num_disks == 10
        assert alloc.num_items == 50

    def test_respects_storage(self):
        items = items_from([(0.6, 0.0)] * 10)
        alloc = random_allocation(items, num_disks=10, rng=2)
        for disk in alloc.disks:
            assert disk.total_size <= 1.0 + 1e-9

    def test_capacity_error_when_full(self):
        items = items_from([(0.9, 0.0)] * 3)
        with pytest.raises(CapacityError):
            random_allocation(items, num_disks=2, rng=3)

    def test_deterministic_with_seed(self):
        items = items_from([(0.05, 0.05)] * 40)
        a = random_allocation(items, num_disks=8, rng=42).mapping(40)
        b = random_allocation(items, num_disks=8, rng=42).mapping(40)
        assert np.array_equal(a, b)

    def test_invalid_pool_rejected(self):
        with pytest.raises(PackingError):
            random_allocation([], num_disks=0)

    def test_oblivious_to_load(self):
        # Random placement ignores loads entirely (the paper's baseline):
        # overloaded disks are allowed.
        items = items_from([(0.01, 0.9)] * 5)
        alloc = random_allocation(items, num_disks=1, rng=0)
        assert alloc.disks[0].total_load > 1.0


class TestRoundRobin:
    def test_striping(self):
        items = items_from([(0.01, 0.01)] * 9)
        mapping = round_robin_allocation(items, num_disks=3).mapping(9)
        assert mapping.tolist() == [0, 1, 2, 0, 1, 2, 0, 1, 2]

    def test_capacity_fallback(self):
        items = items_from([(0.7, 0.0), (0.7, 0.0), (0.2, 0.0)])
        alloc = round_robin_allocation(items, num_disks=2)
        for disk in alloc.disks:
            assert disk.total_size <= 1.0 + 1e-9

    def test_capacity_error(self):
        items = items_from([(0.9, 0.0)] * 3)
        with pytest.raises(CapacityError):
            round_robin_allocation(items, num_disks=2)


class TestFitHeuristics:
    @given(item_lists)
    def test_first_fit_feasible(self, pairs):
        items = items_from(pairs)
        first_fit(items).validate(items)

    @given(item_lists)
    def test_best_fit_feasible(self, pairs):
        items = items_from(pairs)
        best_fit(items).validate(items)

    @given(item_lists)
    def test_ffd_feasible(self, pairs):
        items = items_from(pairs)
        first_fit_decreasing(items).validate(items)

    @given(item_lists)
    def test_next_fit_feasible(self, pairs):
        items = items_from(pairs)
        next_fit(items).validate(items)

    @given(item_lists)
    def test_next_fit_never_beats_first_fit(self, pairs):
        # First-fit dominates next-fit disk-for-disk on identical input.
        items = items_from(pairs)
        assert first_fit(items).num_disks <= next_fit(items).num_disks

    def test_first_fit_reuses_open_disks(self):
        items = items_from([(0.6, 0.1), (0.6, 0.1), (0.3, 0.1)])
        alloc = first_fit(items)
        # Third item fits on disk 0 next to the first.
        assert alloc.mapping(3).tolist() == [0, 1, 0]

    def test_best_fit_prefers_tighter_disk(self):
        # Disk 0 has 0.4 slack, disk 1 has 0.2 slack; a 0.2 item should
        # land on disk 1.
        items = items_from([(0.6, 0.1), (0.8, 0.1), (0.2, 0.05)])
        alloc = best_fit(items)
        assert alloc.mapping(3).tolist() == [0, 1, 1]

    def test_ffd_sorts_by_max_coordinate(self):
        items = items_from([(0.1, 0.1), (0.9, 0.1), (0.5, 0.6)])
        alloc = first_fit_decreasing(items)
        # 0.9 item first -> disk 0; (0.5,0.6) next -> new disk; small last.
        mapping = alloc.mapping(3)
        assert mapping[1] == 0
        assert alloc.algorithm == "first_fit_decreasing"

    def test_custom_ffd_key(self):
        items = items_from([(0.1, 0.4), (0.2, 0.1)])
        alloc = first_fit_decreasing(items, key=lambda it: it.size)
        assert alloc.num_items == 2

    def test_empty_inputs(self):
        assert first_fit([]).num_disks == 0
        assert best_fit([]).num_disks == 0
        assert next_fit([]).num_disks == 0
        assert first_fit_decreasing([]).num_disks == 0
