"""Unit tests for PackItem construction and normalization."""

import pytest

from repro.core import PackItem, make_items, rho_of
from repro.errors import PackingError


class TestMakeItems:
    def test_normalization(self):
        items = make_items([50.0, 100.0], [0.4, 0.8], storage_capacity=100.0,
                           load_capacity=0.8)
        assert items[0] == PackItem(0, 0.5, 0.5)
        assert items[1] == PackItem(1, 1.0, 1.0)

    def test_indices_sequential(self):
        items = make_items([1, 2, 3], [0.1, 0.2, 0.3], 10, 1)
        assert [it.index for it in items] == [0, 1, 2]

    def test_length_mismatch_rejected(self):
        with pytest.raises(PackingError):
            make_items([1, 2], [0.1], 10, 1)

    def test_negative_values_rejected(self):
        with pytest.raises(PackingError):
            make_items([-1.0], [0.1], 10, 1)
        with pytest.raises(PackingError):
            make_items([1.0], [-0.1], 10, 1)

    def test_oversized_file_rejected(self):
        with pytest.raises(PackingError, match="storage"):
            make_items([11.0], [0.1], 10, 1)

    def test_overloaded_file_rejected(self):
        with pytest.raises(PackingError, match="load"):
            make_items([1.0], [1.2], 10, 1)

    def test_bad_capacities_rejected(self):
        with pytest.raises(PackingError):
            make_items([1.0], [0.1], 0, 1)
        with pytest.raises(PackingError):
            make_items([1.0], [0.1], 1, -2)

    def test_2d_input_rejected(self):
        with pytest.raises(PackingError):
            make_items([[1.0]], [[0.1]], 10, 1)


class TestPackItem:
    def test_intensity_classification(self):
        assert PackItem(0, 0.5, 0.3).size_intensive
        assert not PackItem(0, 0.5, 0.3).load_intensive
        assert PackItem(0, 0.3, 0.5).load_intensive
        # Ties are size-intensive by the paper's definition (s_i >= l_i).
        assert PackItem(0, 0.4, 0.4).size_intensive

    def test_excess(self):
        assert PackItem(0, 0.7, 0.2).excess == pytest.approx(0.5)
        assert PackItem(0, 0.2, 0.7).excess == pytest.approx(0.5)


class TestRho:
    def test_rho_is_max_coordinate(self):
        items = [PackItem(0, 0.3, 0.1), PackItem(1, 0.2, 0.45)]
        assert rho_of(items) == pytest.approx(0.45)

    def test_rho_empty(self):
        assert rho_of([]) == 0.0
