"""The O(n^2) reference must produce bit-identical output to Pack_Disks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import make_items, pack_disks, pack_disks_quadratic
from repro.core.item import PackItem
from repro.errors import PackingError

coords = st.floats(min_value=1e-4, max_value=0.45)
item_lists = st.lists(st.tuples(coords, coords), min_size=0, max_size=120)


def disks_as_indices(alloc):
    return [[item.index for item in d.items] for d in alloc.disks]


class TestEquivalence:
    @given(item_lists)
    def test_identical_output(self, pairs):
        items = [PackItem(i, s, l) for i, (s, l) in enumerate(pairs)]
        fast = pack_disks(items)
        slow = pack_disks_quadratic(items)
        assert disks_as_indices(fast) == disks_as_indices(slow)

    @settings(max_examples=10)
    @given(st.integers(50, 800), st.integers(0, 2**31 - 1))
    def test_identical_on_larger_instances(self, n, seed):
        rng = np.random.default_rng(seed)
        items = make_items(
            rng.uniform(0.001, 0.35, n), rng.uniform(0.001, 0.35, n)
        )
        assert disks_as_indices(pack_disks(items)) == disks_as_indices(
            pack_disks_quadratic(items)
        )

    def test_validation_matches(self):
        with pytest.raises(PackingError):
            pack_disks_quadratic([PackItem(0, 2.0, 0.1)])
        with pytest.raises(PackingError):
            pack_disks_quadratic([PackItem(0, 0.5, 0.1)], rho=0.2)

    def test_algorithm_label(self):
        alloc = pack_disks_quadratic([PackItem(0, 0.1, 0.1)])
        assert alloc.algorithm == "pack_disks_quadratic"
