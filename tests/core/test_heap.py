"""Unit and property tests for the max-heap behind Pack_Disks."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.heap import MaxHeap


class TestBasics:
    def test_empty(self):
        h = MaxHeap()
        assert len(h) == 0
        assert not h
        with pytest.raises(IndexError):
            h.pop()
        with pytest.raises(IndexError):
            h.peek()

    def test_push_pop_descending(self):
        h = MaxHeap()
        for k in (3.0, 1.0, 4.0, 1.5, 9.0):
            h.push(k, f"p{k}")
        keys = [h.pop()[0] for _ in range(len(h))]
        assert keys == [9.0, 4.0, 3.0, 1.5, 1.0]

    def test_bulk_construction_matches_pushes(self):
        entries = [(float(k), k) for k in (5, 2, 8, 1, 9, 3)]
        bulk = MaxHeap(entries)
        incremental = MaxHeap()
        for k, p in entries:
            incremental.push(k, p)
        assert bulk.as_sorted_list() == incremental.as_sorted_list()

    def test_peek_does_not_remove(self):
        h = MaxHeap([(1.0, "a"), (2.0, "b")])
        assert h.peek() == (2.0, "b")
        assert len(h) == 2

    def test_fifo_tie_breaking(self):
        h = MaxHeap()
        for name in ("first", "second", "third"):
            h.push(1.0, name)
        assert [h.pop()[1] for _ in range(3)] == ["first", "second", "third"]

    def test_fifo_ties_survive_mixed_operations(self):
        h = MaxHeap([(1.0, "a"), (2.0, "x")])
        h.pop()  # remove "x"
        h.push(1.0, "b")
        h.push(1.0, "c")
        assert [h.pop()[1] for _ in range(3)] == ["a", "b", "c"]

    def test_payloads_travel_with_keys(self):
        h = MaxHeap([(2.5, {"id": 1}), (7.5, {"id": 2})])
        key, payload = h.pop()
        assert key == 7.5
        assert payload == {"id": 2}


class TestProperties:
    @given(st.lists(st.floats(-1e9, 1e9), max_size=300))
    def test_pop_order_is_sorted_descending(self, keys):
        h = MaxHeap((k, i) for i, k in enumerate(keys))
        out = [h.pop()[0] for _ in range(len(keys))]
        assert out == sorted(keys, reverse=True)

    @given(
        st.lists(
            st.tuples(st.sampled_from(["push", "pop"]), st.floats(-100, 100)),
            max_size=200,
        )
    )
    def test_invariant_under_mixed_operations(self, ops):
        h = MaxHeap()
        for op, key in ops:
            if op == "push" or not h:
                h.push(key, None)
            else:
                h.pop()
            h.check_invariant()

    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=200))
    def test_heapify_invariant(self, keys):
        h = MaxHeap((k, None) for k in keys)
        h.check_invariant()

    @given(st.lists(st.floats(0, 100), max_size=100))
    def test_as_sorted_list_is_nondestructive(self, keys):
        h = MaxHeap((k, None) for k in keys)
        before = len(h)
        h.as_sorted_list()
        assert len(h) == before
