"""Unit and property tests for Pack_Disks_v (the grouped variant)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import make_items, pack_disks, pack_disks_grouped
from repro.core.item import PackItem
from repro.errors import PackingError

coords = st.floats(min_value=1e-4, max_value=0.45)
item_lists = st.lists(st.tuples(coords, coords), min_size=1, max_size=120)


class TestBasics:
    def test_v1_equals_pack_disks(self):
        rng = np.random.default_rng(3)
        items = make_items(
            rng.uniform(0.001, 0.3, 300), rng.uniform(0.001, 0.3, 300)
        )
        plain = pack_disks(items)
        grouped = pack_disks_grouped(items, v=1)
        assert [
            sorted(i.index for i in d.items) for d in plain.disks
        ] == [sorted(i.index for i in d.items) for d in grouped.disks]

    def test_invalid_v_rejected(self):
        with pytest.raises(PackingError):
            pack_disks_grouped([PackItem(0, 0.1, 0.1)], v=0)

    def test_empty_input(self):
        assert pack_disks_grouped([], v=4).num_disks == 0

    def test_algorithm_label(self):
        alloc = pack_disks_grouped([PackItem(0, 0.1, 0.1)], v=3)
        assert alloc.algorithm == "pack_disks_v3"

    def test_spreads_similar_items_across_group(self):
        # 40 identical size-intensive items; with v=4 consecutive items
        # must land on different disks (round-robin), unlike v=1 which
        # fills one disk at a time.
        items = [PackItem(i, 0.2, 0.05) for i in range(40)]
        alloc = pack_disks_grouped(items, v=4)
        alloc.validate(items)
        mapping = alloc.mapping(40)
        # The first four consecutive items land on four distinct disks.
        assert len(set(mapping[:4].tolist())) == 4

    def test_v1_keeps_similar_items_together(self):
        items = [PackItem(i, 0.2, 0.05) for i in range(40)]
        mapping = pack_disks(items).mapping(40)
        assert len(set(mapping[:4].tolist())) == 1


class TestProperties:
    @given(item_lists, st.integers(1, 6))
    def test_feasible_and_covering(self, pairs, v):
        items = [PackItem(i, s, l) for i, (s, l) in enumerate(pairs)]
        alloc = pack_disks_grouped(items, v=v)
        alloc.validate(items)

    @settings(max_examples=15)
    @given(st.integers(50, 500), st.integers(0, 2**31 - 1), st.integers(2, 8))
    def test_disk_count_overhead_bounded(self, n, seed, v):
        # The grouped variant may use more disks than v=1, but not wildly
        # more: each group boundary wastes at most v-1 partially-full disks.
        rng = np.random.default_rng(seed)
        items = make_items(
            rng.uniform(0.001, 0.3, n), rng.uniform(0.001, 0.3, n)
        )
        plain = pack_disks(items).num_disks
        grouped = pack_disks_grouped(items, v=v).num_disks
        assert grouped <= plain + max(2 * v, int(0.5 * plain) + v)
