"""Unit tests for lower bounds and allocation verification."""

import math

import pytest

from repro.core import (
    Allocation,
    PackedDisk,
    PackItem,
    continuous_lower_bound,
    optimality_gap,
    pack_disks,
    theorem1_guarantee,
    verify_allocation,
)
from repro.errors import PackingError


def items_from(pairs):
    return [PackItem(i, s, l) for i, (s, l) in enumerate(pairs)]


class TestLowerBound:
    def test_max_of_dimensions(self):
        items = items_from([(0.5, 0.1), (0.5, 0.1)])
        assert continuous_lower_bound(items) == pytest.approx(1.0)
        items = items_from([(0.1, 0.8), (0.1, 0.8)])
        assert continuous_lower_bound(items) == pytest.approx(1.6)

    def test_empty(self):
        assert continuous_lower_bound([]) == 0.0


class TestGuarantee:
    def test_formula(self):
        items = items_from([(0.5, 0.5)] * 4)  # LB = 2, rho = 0.5
        assert theorem1_guarantee(items) == pytest.approx(1 + 2 / 0.5)

    def test_degenerate_rho(self):
        items = items_from([(1.0, 0.1)])
        assert math.isinf(theorem1_guarantee(items))

    def test_explicit_rho(self):
        items = items_from([(0.2, 0.2)] * 5)  # LB = 1
        assert theorem1_guarantee(items, rho=0.5) == pytest.approx(3.0)


class TestGap:
    def test_gap_of_packing(self):
        items = items_from([(0.5, 0.25), (0.25, 0.5)] * 8)
        alloc = pack_disks(items)
        gap = optimality_gap(alloc, items)
        assert 1.0 <= gap <= 2.5

    def test_gap_nan_for_empty(self):
        alloc = pack_disks([])
        assert math.isnan(optimality_gap(alloc, []))


class TestVerify:
    def test_valid_allocation_passes(self):
        items = items_from([(0.3, 0.2), (0.2, 0.3)])
        verify_allocation(pack_disks(items), items, check_bound=True)

    def test_overflow_detected(self):
        items = items_from([(0.7, 0.1), (0.7, 0.1)])
        bad = Allocation(
            disks=[PackedDisk(index=0, items=list(items))],
            algorithm="bogus",
        )
        with pytest.raises(PackingError, match="overflow"):
            verify_allocation(bad, items)

    def test_missing_item_detected(self):
        items = items_from([(0.3, 0.1), (0.3, 0.1)])
        bad = Allocation(
            disks=[PackedDisk(index=0, items=[items[0]])],
            algorithm="bogus",
        )
        with pytest.raises(PackingError, match="covers"):
            verify_allocation(bad, items)

    def test_duplicate_item_detected(self):
        items = items_from([(0.3, 0.1)])
        bad = Allocation(
            disks=[PackedDisk(index=0, items=[items[0], items[0]])],
            algorithm="bogus",
        )
        with pytest.raises(PackingError):
            verify_allocation(bad, items)

    def test_non_dense_numbering_detected(self):
        items = items_from([(0.3, 0.1)])
        bad = Allocation(
            disks=[PackedDisk(index=5, items=[items[0]])],
            algorithm="bogus",
        )
        with pytest.raises(PackingError, match="densely"):
            verify_allocation(bad, items)

    def test_bound_violation_detected(self):
        # One item per disk is far above the guarantee for tiny items.
        items = items_from([(0.01, 0.01)] * 50)
        bad = Allocation(
            disks=[
                PackedDisk(index=i, items=[item])
                for i, item in enumerate(items)
            ],
            algorithm="one_per_disk",
        )
        with pytest.raises(PackingError, match="Theorem 1"):
            verify_allocation(bad, items, check_bound=True)


class TestAllocationContainer:
    def test_summary_mentions_algorithm(self):
        items = items_from([(0.3, 0.1)])
        alloc = pack_disks(items)
        assert "pack_disks" in alloc.summary()
        assert "1 files" in alloc.summary() or "1 " in alloc.summary()

    def test_mapping_dict(self):
        items = items_from([(0.3, 0.1), (0.1, 0.3)])
        alloc = pack_disks(items)
        md = alloc.mapping_dict()
        assert set(md) == {0, 1}

    def test_mapping_out_of_range(self):
        items = items_from([(0.3, 0.1), (0.1, 0.3)])
        alloc = pack_disks(items)
        with pytest.raises(PackingError):
            alloc.mapping(num_files=1)

    def test_per_disk_arrays(self):
        items = items_from([(0.3, 0.1), (0.1, 0.3)])
        alloc = pack_disks(items)
        assert alloc.sizes_per_disk().sum() == pytest.approx(0.4)
        assert alloc.loads_per_disk().sum() == pytest.approx(0.4)

    def test_empty_summary(self):
        alloc = pack_disks([])
        assert "empty" in alloc.summary()
