"""Tests for class-partitioned packing (§6's file-type restriction)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import (
    make_items,
    pack_disks,
    pack_disks_partitioned,
    size_class_classifier,
)
from repro.core.item import PackItem
from repro.errors import PackingError

coords = st.floats(min_value=1e-4, max_value=0.45)
item_lists = st.lists(st.tuples(coords, coords), min_size=1, max_size=100)


class TestClassifier:
    def test_boundary_split(self):
        classify = size_class_classifier(0.1)
        assert classify(PackItem(0, 0.05, 0.0)) == "small"
        assert classify(PackItem(1, 0.2, 0.0)) == "large"

    def test_invalid_boundary(self):
        with pytest.raises(PackingError):
            size_class_classifier(0.0)


class TestPartitionedPacking:
    def test_classes_on_disjoint_disks(self):
        items = [PackItem(i, 0.05, 0.01) for i in range(10)] + [
            PackItem(10 + i, 0.4, 0.01) for i in range(10)
        ]
        alloc = pack_disks_partitioned(items, size_class_classifier(0.1))
        alloc.validate(items)
        small_disks = {
            d.index for d in alloc.disks
            if any(it.size <= 0.1 for it in d.items)
        }
        large_disks = {
            d.index for d in alloc.disks
            if any(it.size > 0.1 for it in d.items)
        }
        assert small_disks.isdisjoint(large_disks)

    def test_single_class_equals_pack_disks(self):
        rng = np.random.default_rng(2)
        items = make_items(
            rng.uniform(0.001, 0.2, 200), rng.uniform(0.001, 0.2, 200)
        )
        plain = pack_disks(items)
        partitioned = pack_disks_partitioned(items, lambda it: "all")
        assert partitioned.num_disks == plain.num_disks

    def test_algorithm_label_counts_classes(self):
        items = [PackItem(0, 0.05, 0.01), PackItem(1, 0.4, 0.01)]
        alloc = pack_disks_partitioned(items, size_class_classifier(0.1))
        assert alloc.algorithm == "pack_disks_partitioned_2"

    def test_deterministic_class_order(self):
        items = [PackItem(i, 0.05 + 0.1 * (i % 3), 0.01) for i in range(30)]
        classify = lambda it: round(it.size, 2)  # noqa: E731
        a = pack_disks_partitioned(items, classify)
        b = pack_disks_partitioned(items, classify)
        assert [
            [it.index for it in d.items] for d in a.disks
        ] == [[it.index for it in d.items] for d in b.disks]

    @given(item_lists, st.floats(0.05, 0.4))
    def test_feasible_for_any_boundary(self, pairs, boundary):
        items = [PackItem(i, s, l) for i, (s, l) in enumerate(pairs)]
        alloc = pack_disks_partitioned(
            items, size_class_classifier(boundary)
        )
        alloc.validate(items)

    @given(item_lists)
    def test_overhead_at_most_one_disk_per_class(self, pairs):
        # k classes cost at most k-1 extra open disks vs packing jointly
        # is NOT guaranteed in general, but each class individually obeys
        # Theorem 1; check the sum of per-class guarantees.
        from repro.core.bounds import theorem1_guarantee

        items = [PackItem(i, s, l) for i, (s, l) in enumerate(pairs)]
        classify = size_class_classifier(0.2)
        alloc = pack_disks_partitioned(items, classify)
        small = [it for it in items if classify(it) == "small"]
        large = [it for it in items if classify(it) == "large"]
        cap = sum(
            theorem1_guarantee(group) for group in (small, large) if group
        )
        assert alloc.num_disks <= cap + 1e-9
