"""Unit and property tests for Pack_Disks (Algorithm 3).

The property tests check the paper's formal claims on random instances:
feasibility on both dimensions, exact coverage, the structural completeness
property of Lemmas 5/6, and the checkable consequence of Theorem 1
(``C_PD <= 1 + LB/(1 - rho)``).
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    PackItem,
    continuous_lower_bound,
    make_items,
    pack_disks,
    rho_of,
    theorem1_guarantee,
)
from repro.core.packing import split_intensive
from repro.errors import PackingError

# Strategy: random item coordinate lists bounded well below 1.
coords = st.floats(min_value=1e-4, max_value=0.45)
item_lists = st.lists(st.tuples(coords, coords), min_size=1, max_size=150)


def items_from(pairs):
    return [PackItem(i, s, l) for i, (s, l) in enumerate(pairs)]


class TestBasics:
    def test_empty_input(self):
        alloc = pack_disks([])
        assert alloc.num_disks == 0
        assert alloc.algorithm == "pack_disks"

    def test_single_item(self):
        alloc = pack_disks([PackItem(0, 0.3, 0.2)])
        assert alloc.num_disks == 1
        assert alloc.disks[0].items == [PackItem(0, 0.3, 0.2)]

    def test_full_size_item_allowed(self):
        alloc = pack_disks([PackItem(0, 1.0, 0.1), PackItem(1, 0.9, 0.1)])
        alloc.validate()
        assert alloc.num_disks == 2

    def test_oversized_item_rejected(self):
        with pytest.raises(PackingError):
            pack_disks([PackItem(0, 1.5, 0.1)])
        with pytest.raises(PackingError):
            pack_disks([PackItem(0, 0.1, 1.5)])

    def test_negative_coordinate_rejected(self):
        with pytest.raises(PackingError):
            pack_disks([PackItem(0, -0.1, 0.1)])

    def test_rho_below_items_rejected(self):
        with pytest.raises(PackingError):
            pack_disks([PackItem(0, 0.5, 0.1)], rho=0.3)

    def test_explicit_larger_rho_accepted(self):
        items = items_from([(0.2, 0.1)] * 20)
        alloc = pack_disks(items, rho=0.5)
        alloc.validate(items)

    def test_deterministic(self):
        rng = np.random.default_rng(0)
        items = items_from(zip(rng.uniform(0, 0.3, 200), rng.uniform(0, 0.3, 200)))
        a = pack_disks(items)
        b = pack_disks(items)
        assert [d.items for d in a.disks] == [d.items for d in b.disks]

    def test_perfect_packing_of_complements(self):
        # Items (0.5, 0.25) and (0.25, 0.5) pair up into complete disks
        # with rho = 0.5: S = L = 0.75 >= 1 - rho.
        items = items_from([(0.5, 0.25), (0.25, 0.5)] * 10)
        alloc = pack_disks(items)
        alloc.validate(items)
        # Perfectly balanced: lower bound is 7.5, pack must be close.
        assert alloc.num_disks <= 16

    def test_zero_load_items(self):
        # Pure-archive files: load 0 (never accessed).
        items = items_from([(0.4, 0.0)] * 10)
        alloc = pack_disks(items)
        alloc.validate(items)
        assert alloc.num_disks == 5  # 2 per disk by storage

    def test_mapping_roundtrip(self):
        items = items_from([(0.3, 0.1), (0.1, 0.3), (0.2, 0.2)])
        alloc = pack_disks(items)
        mapping = alloc.mapping(3)
        assert set(mapping.tolist()) <= set(range(alloc.num_disks))
        # Every file appears exactly once.
        assert sorted(
            it.index for d in alloc.disks for it in d.items
        ) == [0, 1, 2]


class TestSplit:
    def test_split_intensive(self):
        st_items, ld_items = split_intensive(
            [PackItem(0, 0.3, 0.1), PackItem(1, 0.1, 0.3), PackItem(2, 0.2, 0.2)]
        )
        assert [i.index for i in st_items] == [0, 2]
        assert [i.index for i in ld_items] == [1]


class TestProperties:
    @given(item_lists)
    def test_feasible_and_covering(self, pairs):
        items = items_from(pairs)
        alloc = pack_disks(items)
        alloc.validate(items)  # capacity + coverage + dense numbering

    @given(item_lists)
    def test_theorem1_guarantee(self, pairs):
        items = items_from(pairs)
        alloc = pack_disks(items)
        cap = theorem1_guarantee(items)
        assert alloc.num_disks <= math.floor(cap + 1e-9)

    @given(item_lists)
    def test_all_but_last_disk_s_or_l_complete(self, pairs):
        # Lemma 6: every closed disk except possibly the last is at least
        # s-complete or l-complete.
        items = items_from(pairs)
        rho = rho_of(items)
        alloc = pack_disks(items)
        for disk in alloc.disks[:-1]:
            assert disk.is_s_complete(rho) or disk.is_l_complete(rho), (
                f"disk {disk.index}: S={disk.total_size:.4f} "
                f"L={disk.total_load:.4f} rho={rho:.4f}"
            )

    @given(item_lists)
    def test_no_better_than_lower_bound(self, pairs):
        items = items_from(pairs)
        alloc = pack_disks(items)
        lb = continuous_lower_bound(items)
        assert alloc.num_disks >= math.ceil(lb - 1e-9)

    @settings(max_examples=20)
    @given(st.integers(1, 500), st.integers(0, 2**31 - 1))
    def test_random_instances_at_scale(self, n, seed):
        rng = np.random.default_rng(seed)
        items = make_items(
            rng.uniform(0.001, 0.4, n), rng.uniform(0.001, 0.4, n)
        )
        alloc = pack_disks(items)
        alloc.validate(items)
        assert alloc.num_disks <= theorem1_guarantee(items) + 1e-9


class TestEfficiency:
    def test_near_linear_growth(self):
        # The number of *eviction* events is bounded by the number of disks,
        # so runtime grows n log n; a crude sanity check that 8x input does
        # not blow up superquadratically (would be 64x).
        import time

        rng = np.random.default_rng(1)

        def run(n):
            items = make_items(
                rng.uniform(0.001, 0.2, n), rng.uniform(0.001, 0.2, n)
            )
            best = math.inf
            for _ in range(3):
                t0 = time.perf_counter()
                pack_disks(items)
                best = min(best, time.perf_counter() - t0)
            return best

        t_small, t_big = run(2_000), run(16_000)
        assert t_big < 40 * t_small + 0.05
