"""What the engines actually emit: timelines, cache churn, control pushes.

The event engine reports the full per-disk state timeline (its spans must
tile ``[0, T]`` exactly); the fast kernel reports spin transitions with
emission invariant under chunking (the observability analogue of the
chunked-vs-monolithic bit-identity axis).
"""

from __future__ import annotations

from collections import Counter

import pytest

from obsutil import CACHE, DPM, DURATION, ENGINES, NUM_DISKS, run_traced

from repro.obs.trace import TraceRecorder


def record(engine: str, **overrides) -> TraceRecorder:
    recorder = TraceRecorder()
    run_traced(engine, observer=recorder, **overrides)
    return recorder


def test_event_engine_spans_tile_the_horizon():
    recorder = record("event")
    by_disk = {}
    for disk, state, start, end in recorder.state_spans:
        assert end > start, (disk, state, start, end)
        by_disk.setdefault(disk, []).append((start, end, state))
    assert set(by_disk) == set(range(NUM_DISKS))
    for disk, spans in by_disk.items():
        spans.sort()
        assert spans[0][0] == 0.0, disk
        assert spans[-1][1] == DURATION, disk
        for (_, end, _), (start, _, _) in zip(spans, spans[1:]):
            assert end == start, disk  # gapless and overlap-free


def test_event_engine_sees_every_transition():
    recorder = record("event")
    result = run_traced("event")
    states = Counter(state for _, state, _, _ in recorder.state_spans)
    assert states["spinup"] == result.spinups
    assert states["spindown"] == result.spindowns
    assert result.spindowns > 0  # the scenario exercises transitions


def test_fast_kernel_transition_spans_match_result():
    recorder = record("fast")
    result = run_traced("fast")
    states = Counter(state for _, state, _, _ in recorder.state_spans)
    assert states["spinup"] == result.spinups
    assert states["spindown"] == result.spindowns
    assert result.spindowns > 0
    for _, _, start, end in recorder.state_spans:
        assert 0.0 <= start < end <= DURATION


@pytest.mark.parametrize("chunk_size", (7, 64))
def test_fast_kernel_trace_is_chunking_invariant(chunk_size):
    """Chunked and monolithic runs emit the same events — spans compared
    as multisets (flush boundaries interleave disks differently), the
    arrival-ordered streams exactly."""
    mono = record("fast", mixed=True, **CACHE)
    chunked = record(
        "fast",
        mixed=True,
        **CACHE,
        chunk_size=chunk_size,
    )
    assert sorted(mono.state_spans) == sorted(chunked.state_spans)
    assert mono.cache_events == chunked.cache_events
    assert mono.placements == chunked.placements
    assert mono.threshold_events == chunked.threshold_events


@pytest.mark.parametrize("engine", ENGINES)
def test_cache_events_match_cache_stats(engine):
    recorder = record(engine, **CACHE)
    result = run_traced(engine, **CACHE)
    kinds = Counter(kind for _, kind, _ in recorder.cache_events)
    assert kinds["hit"] == result.cache_stats.hits
    assert kinds["miss"] == result.cache_stats.misses
    assert kinds["evict"] == result.cache_stats.evictions
    assert kinds["admit"] >= result.cache_stats.insertions
    assert result.cache_stats.hits > 0
    for time, kind, file_id in recorder.cache_events:
        assert 0.0 <= time <= DURATION
        assert file_id >= 0


def test_threshold_pushes_agree_across_engines():
    pushes = {}
    for engine in ENGINES:
        pushes[engine] = record(engine, **DPM).threshold_events
    assert pushes["event"], "controller never pushed thresholds"
    assert pushes["event"] == pushes["fast"]
    times = [t for t, _ in pushes["event"]]
    assert times == sorted(times)
    assert all(len(th) == NUM_DISKS for _, th in pushes["event"])


@pytest.mark.parametrize("engine", ENGINES)
def test_placements_agree_with_final_mapping(engine):
    recorder = record(engine, mixed=True)
    result = run_traced(engine, mixed=True)
    assert recorder.placements, "mixed stream produced no placements"
    for time, file_id, disk in recorder.placements:
        assert 0.0 <= time <= DURATION
        assert result.final_mapping[file_id] == disk
