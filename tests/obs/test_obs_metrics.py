"""The metrics registry and the ``extra["obs"]`` snapshot contract."""

from __future__ import annotations

import json

import pytest

from obsutil import CACHE, DURATION, ENGINES, NUM_DISKS, run_traced

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    OBS_SNAPSHOT_VERSION,
)
from repro.obs.trace import TraceRecorder


class TestPrimitives:
    def test_counter(self):
        c = Counter("x")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_gauge_last_write_wins(self):
        g = Gauge("x")
        g.set(3)
        g.set(1.5)
        assert g.value == 1.5

    def test_histogram_buckets(self):
        h = Histogram("x", bounds=(1.0, 10.0))
        for v in (0.5, 1.0, 5.0, 100.0):
            h.observe(v)
        assert h.counts == [2, 1, 1]  # <=1, <=10, overflow
        assert h.count == 4
        assert h.min == 0.5 and h.max == 100.0
        snap = h.snapshot()
        assert snap["mean"] == pytest.approx(106.5 / 4)

    def test_histogram_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            Histogram("x", bounds=(3.0, 1.0))

    def test_empty_histogram_snapshot(self):
        snap = Histogram("x").snapshot()
        assert snap["count"] == 0
        assert snap["mean"] is None and snap["min"] is None

    def test_registry_interns_by_name(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("b") is reg.gauge("b")
        assert reg.histogram("c") is reg.histogram("c")
        snap = reg.snapshot()
        assert set(snap) == {"counters", "gauges", "histograms"}
        assert json.loads(json.dumps(snap)) == snap


@pytest.mark.parametrize("engine", ENGINES)
class TestRunSnapshot:
    def run_observed(self, engine):
        recorder = TraceRecorder()
        result = run_traced(engine, observer=recorder, **CACHE)
        return result, recorder

    def test_snapshot_attached_and_versioned(self, engine):
        result, _ = self.run_observed(engine)
        snap = result.extra["obs"]
        assert snap["version"] == OBS_SNAPSHOT_VERSION
        assert set(snap) == {"version", "run", "events"}
        assert json.loads(json.dumps(snap)) == snap

    def test_run_counters_mirror_the_result(self, engine):
        result, _ = self.run_observed(engine)
        counters = result.extra["obs"]["run"]["counters"]
        assert counters["run.arrivals"] == result.arrivals
        assert counters["run.spinups"] == result.spinups
        assert counters["run.spindowns"] == result.spindowns
        assert counters["cache.hits"] == result.cache_stats.hits
        assert counters["cache.misses"] == result.cache_stats.misses

    def test_run_gauges_and_state_residency(self, engine):
        result, _ = self.run_observed(engine)
        gauges = result.extra["obs"]["run"]["gauges"]
        assert gauges["run.duration_s"] == DURATION
        assert gauges["run.num_disks"] == NUM_DISKS
        assert gauges["run.energy_j"] == pytest.approx(result.energy)
        residency = sum(v for k, v in gauges.items() if k.startswith("state."))
        assert residency == pytest.approx(NUM_DISKS * DURATION)

    def test_response_histogram_covers_every_response(self, engine):
        result, _ = self.run_observed(engine)
        hist = result.extra["obs"]["run"]["histograms"]["response_s"]
        assert hist["count"] == len(result.response_times)
        assert sum(hist["counts"]) == hist["count"]
        assert hist["min"] == pytest.approx(float(min(result.response_times)))
        assert hist["max"] == pytest.approx(float(max(result.response_times)))

    def test_streaming_run_keeps_a_response_section(self, engine):
        """Regression: observed ``metrics_mode="streaming"`` runs used to
        lose the response section entirely (the snapshot only read
        ``response_times``, which streaming mode sets to ``None``).  The
        accumulator's summary must surface as gauges instead."""
        recorder = TraceRecorder()
        result = run_traced(
            engine, observer=recorder, metrics_mode="streaming", **CACHE
        )
        assert result.response_times is None
        stats = result.response_stats
        snap = result.extra["obs"]["run"]
        assert "response_s" not in snap["histograms"]
        gauges = snap["gauges"]
        assert gauges["response.count"] == stats.count
        assert gauges["response.mean_s"] == pytest.approx(stats.mean)
        assert gauges["response.min_s"] == stats.min
        assert gauges["response.max_s"] == stats.max
        for name, value in (
            ("p50", stats.p50), ("p95", stats.p95), ("p99", stats.p99)
        ):
            assert gauges[f"response.{name}_s"] == pytest.approx(value)
        assert json.loads(json.dumps(snap)) == snap

    def test_observer_event_counts_merge_into_events(self, engine):
        result, recorder = self.run_observed(engine)
        events = result.extra["obs"]["events"]["counters"]
        assert events["cache.hit"] == result.cache_stats.hits
        assert events["cache.miss"] == result.cache_stats.misses
        span_total = sum(
            v for k, v in events.items() if k.startswith("span.")
        )
        assert span_total == len(recorder.state_spans)
