"""Chrome-trace exporter contracts: schema, per-track ordering, pairing.

Traces must load in Perfetto / ``chrome://tracing``: a structurally valid
JSON object whose events carry the required keys, whose timestamps never
run backwards within a track, and whose duration spans arrive as strictly
nested, name-matched B/E pairs.
"""

from __future__ import annotations

import json

import pytest

from obsutil import CACHE, DPM, ENGINES, run_traced, track_events

from repro.experiments.orchestrator import TaskProfile
from repro.obs.hooks import NULL_OBSERVER, NullObserver, active_observer
from repro.obs.trace import TraceRecorder, sweep_chrome_trace, write_trace

_PHASES = {"B", "E", "i", "M", "X"}
_REQUIRED_KEYS = {"ph", "pid", "tid", "ts", "name"}


def record(engine: str, **overrides) -> TraceRecorder:
    recorder = TraceRecorder()
    run_traced(engine, observer=recorder, **overrides)
    return recorder


@pytest.fixture(scope="module", params=ENGINES)
def trace(request):
    """A full-featured trace (cache + DPM + writes) per engine."""
    recorder = record(
        request.param,
        mixed=True,
        **CACHE,
        **DPM,
    )
    return recorder.to_chrome_trace()


def test_trace_schema(trace):
    assert set(trace) == {"traceEvents", "displayTimeUnit", "otherData"}
    assert trace["otherData"]["clock"] == "simulated-seconds"
    assert trace["traceEvents"], "instrumented run produced an empty trace"
    for event in trace["traceEvents"]:
        assert _REQUIRED_KEYS <= set(event), event
        assert event["ph"] in _PHASES, event
        assert event["ts"] >= 0.0, event
    # Round-trips through JSON (no numpy scalars or other non-JSON types).
    assert json.loads(json.dumps(trace)) == trace


def test_timestamps_monotonic_per_track(trace):
    for key, events in track_events(trace).items():
        stamps = [e["ts"] for e in events if e["ph"] != "M"]
        assert stamps == sorted(stamps), key


def test_span_begin_end_pairing(trace):
    """Every track's B/E events nest like a well-formed bracket string."""
    saw_spans = False
    for key, events in track_events(trace).items():
        stack = []
        for event in events:
            if event["ph"] == "B":
                stack.append(event["name"])
            elif event["ph"] == "E":
                saw_spans = True
                assert stack, (key, event)
                assert stack.pop() == event["name"], (key, event)
        assert stack == [], (key, stack)
    assert saw_spans


def test_every_event_class_is_present(trace):
    names = {e["name"] for e in trace["traceEvents"] if e["ph"] != "M"}
    assert "thresholds" in names
    assert "place" in names
    assert {n for n in names if n.startswith("cache:")} >= {
        "cache:hit",
        "cache:miss",
        "cache:admit",
    }


def test_write_chrome_trace_round_trips(tmp_path):
    recorder = record("fast")
    out = recorder.write_chrome_trace(tmp_path / "sub" / "trace.json")
    loaded = json.loads(out.read_text(encoding="utf-8"))
    assert loaded == recorder.to_chrome_trace()


def test_zero_length_spans_are_dropped():
    recorder = TraceRecorder()
    recorder.on_state_span(0, "spinning", 3.0, 3.0)
    recorder.on_state_span(0, "spinning", 3.0, 5.0)
    spans = [e for e in recorder.to_chrome_trace()["traceEvents"] if e["ph"] in "BE"]
    assert len(spans) == 2  # one B/E pair; the empty dwell vanished


def test_sweep_trace_uses_complete_events(tmp_path):
    profiles = [
        TaskProfile(label="a", fingerprint="f1", started=0.0, wall=1.5, pid=11),
        TaskProfile(label="b", fingerprint="f2", started=0.5, wall=0.25, pid=12),
    ]
    trace = sweep_chrome_trace(profiles)
    tasks = [e for e in trace["traceEvents"] if e["ph"] == "X"]
    assert {e["name"] for e in tasks} == {"a", "b"}
    assert all(e["dur"] > 0 for e in tasks)
    assert {e["tid"] for e in tasks} == {11, 12}
    assert trace["otherData"]["clock"] == "wall-seconds"
    out = write_trace(trace, tmp_path / "sweep.json")
    assert json.loads(out.read_text(encoding="utf-8")) == trace


def test_active_observer_normalization():
    recorder = TraceRecorder()
    assert active_observer(None) is None
    assert active_observer(NULL_OBSERVER) is None
    assert active_observer(NullObserver()) is None
    assert active_observer(recorder) is recorder


@pytest.mark.parametrize("engine", ENGINES)
def test_null_observer_leaves_no_snapshot(engine):
    assert "obs" not in run_traced(engine, observer=NULL_OBSERVER).extra
    assert "obs" not in run_traced(engine).extra
