"""Shared scenario builders for the observability suite.

Every helper returns deterministic, seeded scenarios sized so spin
transitions, cache churn, controller pushes, and write placements all
actually occur (an observability test over a trace with no events proves
nothing).
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.system import StorageConfig, StorageSystem
from repro.workload.generator import SyntheticWorkloadParams, generate_workload
from repro.workload.mixed import MixedWorkloadParams, generate_mixed_workload

DURATION = 200.0
NUM_DISKS = 20
ENGINES = ("event", "fast")

#: Per-request inter-arrivals per disk (~20 s at rate 1.0 over 20 disks)
#: dwarf this threshold, so every scenario spins disks up and down.
THRESHOLD = 5.0

#: Shared-cache overrides sized so the multi-GB catalog actually hits
#: (a too-small capacity rejects every insertion — zero cache events).
CACHE = {"cache_policy": "lru", "cache_capacity": float(2**36)}

#: An *online* DPM policy ("fixed" is static — engines skip its control
#: loop entirely, so it never pushes thresholds to an observer).
DPM = {"dpm_policy": "adaptive_timeout", "control_interval": 25.0}


@lru_cache(maxsize=1)
def base_workload():
    return generate_workload(
        SyntheticWorkloadParams(
            n_files=400, arrival_rate=1.0, duration=DURATION, seed=9
        )
    )


def make_config(**overrides) -> StorageConfig:
    kwargs = dict(
        num_disks=NUM_DISKS,
        load_constraint=0.7,
        idleness_threshold=THRESHOLD,
    )
    kwargs.update(overrides)
    return StorageConfig(**kwargs)


def run_traced(engine: str, observer=None, *, mixed: bool = False, **overrides):
    """Run the standard scenario on one engine, returning the result.

    ``mixed=True`` switches to a read/write stream (new files unmapped)
    so write-placement emissions occur; ``overrides`` go straight into
    :class:`StorageConfig` (cache, DPM, chunking, ...).
    """
    wl = base_workload()
    cfg = make_config(engine=engine, **overrides)
    mapping = np.arange(wl.catalog.n, dtype=np.int64) % NUM_DISKS
    if mixed:
        catalog, stream = generate_mixed_workload(
            wl.catalog,
            MixedWorkloadParams(
                write_fraction=0.3,
                new_file_fraction=0.6,
                arrival_rate=1.0,
                duration=DURATION,
                seed=10,
            ),
        )
        mapping = np.concatenate(
            [mapping, np.full(catalog.n - wl.catalog.n, -1, dtype=np.int64)]
        )
    else:
        catalog, stream = wl.catalog, wl.stream
    system = StorageSystem(catalog, mapping, cfg, num_disks=NUM_DISKS)
    return system.run(stream, observer=observer)


def track_events(trace: dict):
    """Group a Chrome trace's events by ``(pid, tid)`` track, in order."""
    tracks: dict = {}
    for event in trace["traceEvents"]:
        tracks.setdefault((event["pid"], event["tid"]), []).append(event)
    return tracks
