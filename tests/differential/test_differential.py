"""The randomized cross-engine differential harness.

``test_random_config_agrees`` is the primary engine-equivalence oracle:
each seed expands into a random valid scenario (disks x streams x cache x
write policy x DPM policy x ladder — see ``diffgen.build_case``) and both
kernels must agree to 1e-9 *and* satisfy the physical invariants.  On
failure the assertion message carries a paste-able reproduction recipe
(see README.md in this directory).

Budget knobs (environment variables):

``REPRO_DIFF_CASES``
    Number of seeded cases (default 200 — the CI budget).
``REPRO_DIFF_BASE_SEED``
    First seed (default 20260726).  Pin a single failing seed with
    ``REPRO_DIFF_CASES=1 REPRO_DIFF_BASE_SEED=<seed>``.
``REPRO_DIFF_OBSERVER_CASES``
    Seeds for the observer-passivity axis (default 40): each case runs
    both engines observed and unobserved and requires *bit* identity.
``REPRO_DIFF_SCHED_CASES``
    Seeds for the request-scheduler axis (default 60): each case layers
    a random scheduler over the random config space and holds both
    engines to the same 1e-9 contract (plus chunked bit identity on a
    subset).

The ``--runslow``-gated grid at the bottom exhaustively crosses every
registered ladder preset with every registered DPM policy (the
nightly-style sweep); the seeded harness samples that product every run.
"""

import os

import numpy as np
import pytest

from diffgen import (
    assert_chunked_identical,
    assert_engines_agree,
    assert_invariants,
    assert_observer_invisible,
    assert_streaming_consistent,
    build_case,
    build_scheduled_case,
    run_chunked,
    run_engines,
    run_observed,
    sample_scheduler,
)
from repro.obs.trace import TraceRecorder

from repro.control.policies import dpm_policy_names
from repro.disk.dpm import dpm_ladder_names
from repro.system.scheduling import request_scheduler_names
from repro.system import StorageConfig, StorageSystem, allocate
from repro.workload.generator import SyntheticWorkloadParams, generate_workload

CASES = int(os.environ.get("REPRO_DIFF_CASES", "200"))
BASE_SEED = int(os.environ.get("REPRO_DIFF_BASE_SEED", "20260726"))
#: Seeds for the chunked-vs-monolithic axis (each costs 1 monolithic + 1
#: streaming + len(CHUNK_SIZES) chunked fast runs — no event run, so the
#: default budget stays comparable to ~30 cross-engine cases).
CHUNK_CASES = int(os.environ.get("REPRO_DIFF_CHUNK_CASES", "30"))
#: Pathological on purpose: 1 (every request its own chunk — maximal
#: boundary count), a small prime (misaligned with every control interval
#: and write segment), and a mid-size prime (several boundaries per run).
CHUNK_SIZES = (1, 13, 101)
#: Seeds for the observer-passivity axis (each costs 2 event + 2 fast
#: runs, so the default budget matches ~40 cross-engine cases).
OBSERVER_CASES = int(os.environ.get("REPRO_DIFF_OBSERVER_CASES", "40"))
#: Seeds for the scheduler axis: each case layers a random request
#: scheduler (independent salted draw — base scenarios unchanged) over
#: the random config space and runs both engines; every third case also
#: re-runs the fast kernel chunked and requires bit identity.
SCHED_CASES = int(os.environ.get("REPRO_DIFF_SCHED_CASES", "60"))


@pytest.mark.parametrize("seed", range(BASE_SEED, BASE_SEED + CASES))
def test_random_config_agrees(seed):
    case = build_case(seed)
    event, fast = run_engines(case)
    assert_invariants(event, case)
    assert_invariants(fast, case)
    assert_engines_agree(event, fast, case)


@pytest.mark.parametrize("seed", range(BASE_SEED, BASE_SEED + CHUNK_CASES))
def test_chunked_matches_monolithic(seed):
    """Out-of-core axis: the chunked fast kernel is *bit-identical* to the
    monolithic one across the whole random config space, at every chunk
    size — and streaming metrics summarize the same run exactly."""
    from repro.system import StorageSystem

    case = build_case(seed)
    mono = StorageSystem(
        case.catalog,
        case.mapping,
        case.config.with_overrides(engine="fast"),
        num_disks=case.num_disks,
    ).run(case.stream)
    for k in CHUNK_SIZES:
        chunk = run_chunked(case, k)
        assert_chunked_identical(mono, chunk, case, k)
    streamed = run_chunked(case, CHUNK_SIZES[-1], metrics_mode="streaming")
    assert_streaming_consistent(mono, streamed, case)


@pytest.mark.parametrize("seed", range(BASE_SEED, BASE_SEED + OBSERVER_CASES))
def test_observer_runs_bit_identical(seed):
    """Observer axis: attaching a ``TraceRecorder`` must not perturb a
    single bit of either engine's output, anywhere in the random config
    space.  The recorder must also actually *see* the run (non-empty
    state spans) — a silently disconnected observer would pass the
    identity check vacuously."""
    case = build_case(seed)
    for engine in ("event", "fast"):
        off = run_observed(case, engine)
        recorder = TraceRecorder()
        on = run_observed(case, engine, observer=recorder)
        assert_observer_invisible(off, on, case, engine)
        if engine == "event":
            # The event engine reports the full per-disk state timeline.
            assert recorder.state_spans, (case.describe(), engine)
        elif off.spindowns:
            # The fast kernel's granularity is spin transitions; a run
            # with none legitimately leaves an empty span track.
            assert recorder.state_spans, (case.describe(), engine)


@pytest.mark.parametrize("seed", range(BASE_SEED, BASE_SEED + SCHED_CASES))
def test_scheduled_config_agrees(seed):
    """Scheduler axis: with a random request scheduler layered over the
    random config space, both engines still agree to 1e-9 — same release
    decisions, same submission order, same response accounting (measured
    from the *original* arrival).  Every third case additionally re-runs
    the fast kernel chunked at a misaligned prime chunk size and requires
    bit identity (the scheduler's pending heap is carry-state)."""
    case = build_scheduled_case(seed)
    event, fast = run_engines(case)
    assert_invariants(event, case)
    assert_invariants(fast, case)
    assert_engines_agree(event, fast, case)
    if (seed - BASE_SEED) % 3 == 0:
        for k in (13,):
            chunk = run_chunked(case, k)
            assert_chunked_identical(fast, chunk, case, k)


def test_scheduler_axis_covers_every_registered_scheduler():
    """The salted draw exercises every registered scheduler and both the
    parameterized and default-parameter arms (no silently dead branch)."""
    draws = [
        sample_scheduler(s) for s in range(BASE_SEED, BASE_SEED + 120)
    ]
    names = {name for name, _ in draws}
    assert names == set(request_scheduler_names())
    assert any(params for name, params in draws if name == "batch_release")
    assert any(
        not params for name, params in draws if name == "batch_release"
    )
    assert all(
        dict(params).get("target") is not None
        for name, params in draws
        if name == "slack_defer"
    )


def test_generator_is_deterministic():
    a, b = build_case(BASE_SEED), build_case(BASE_SEED)
    assert a.describe() == b.describe()
    assert np.array_equal(a.stream.times, b.stream.times)
    assert np.array_equal(a.mapping, b.mapping)


def test_generator_covers_the_config_space():
    """The sampler actually exercises every axis (no silently dead arms)."""
    cases = [build_case(s) for s in range(BASE_SEED, BASE_SEED + 120)]
    assert {c.config.cache_policy for c in cases} > {None}
    assert len({c.config.write_policy for c in cases}) >= 4
    assert {c.config.dpm_policy for c in cases} == set(dpm_policy_names())
    ladders = {
        c.config.dpm_ladder if isinstance(c.config.dpm_ladder, (str, type(None)))
        else "user"
        for c in cases
    }
    assert ladders >= set(dpm_ladder_names()) | {None, "user"}
    kinds = {type(c.stream).__name__ for c in cases}
    assert kinds == {"RequestStream", "MixedRequestStream"}
    thresholds = {
        (
            "default" if c.config.idleness_threshold is None
            else "inf" if c.config.idleness_threshold == float("inf")
            else "zero" if c.config.idleness_threshold == 0.0
            else "finite"
        )
        for c in cases
    }
    assert thresholds == {"default", "inf", "zero", "finite"}
    fleets = {
        c.config.fleet if isinstance(c.config.fleet, (str, type(None)))
        else "random"
        for c in cases
    }
    assert fleets == {None, "mixed_generation", "random"}
    # At least one sampled random fleet mixes drive models and at least
    # one carries a per-slot ladder (the mixed-ladder backfill path).
    profiles = [
        c.config.fleet.profile
        for c in cases
        if not isinstance(c.config.fleet, (str, type(None)))
    ]
    assert any(len({s.spec for s in p}) > 1 for p in profiles)
    assert any(any(s.ladder is not None for s in p) for p in profiles)
    assert {c.arrival_shape for c in cases} == {
        "uniform", "diurnal", "bursty"
    }


@pytest.mark.slow
@pytest.mark.parametrize("ladder", (None,) + dpm_ladder_names())
@pytest.mark.parametrize("policy", dpm_policy_names())
def test_full_ladder_policy_grid(ladder, policy):
    """Exhaustive ladder x policy equivalence (nightly --runslow sweep)."""
    wl = generate_workload(
        SyntheticWorkloadParams(
            n_files=900, arrival_rate=1.2, duration=800.0, seed=404
        )
    )
    kwargs = dict(
        num_disks=30,
        load_constraint=0.6,
        dpm_policy=policy,
        control_interval=120.0,
        dpm_ladder=ladder,
    )
    if policy == "slo_feedback":
        kwargs["slo_target"] = 25.0
    cfg = StorageConfig(**kwargs)
    mapping = allocate(wl.catalog, "pack", cfg, 1.2).mapping(wl.catalog.n)

    class _Case:
        seed = -1
        config = cfg

        @staticmethod
        def describe():
            return f"full grid: ladder={ladder!r} policy={policy!r}"

    event = StorageSystem(
        wl.catalog, mapping, cfg.with_overrides(engine="event")
    ).run(wl.stream)
    fast = StorageSystem(
        wl.catalog, mapping, cfg.with_overrides(engine="fast")
    ).run(wl.stream)
    assert_engines_agree(event, fast, _Case)
    assert event.spindowns > 0  # the grid exercises spin transitions
