"""Seeded random-scenario generation for the cross-engine differential
harness (see README.md in this directory for the reproduction workflow).

One integer seed deterministically expands into a complete, *valid*
simulation scenario — catalog, request stream, initial mapping and
:class:`~repro.system.config.StorageConfig` — sampled across the full
configuration product the engines must agree on:

    disks x stream shape x read/write mix x cache (policy, capacity)
    x write-placement policy x DPM policy (incl. SLO feedback)
    x idleness threshold (0 / finite / inf / default)
    x DPM ladder (none / presets / random user ladder)
    x fleet (uniform / mixed_generation preset / random heterogeneous
    profile with per-slot ladders and thresholds)
    x arrival shape (uniform Poisson / diurnal intensity / NERSC-style
    bursts)

A second, independently-seeded axis layers a random request scheduler
(``scheduler`` x ``scheduler_params``) over the same scenarios —
``build_scheduled_case(seed)`` — without perturbing the base draws.

``build_case(seed)`` returns the scenario plus a paste-able description;
``assert_engines_agree`` runs both kernels and holds them to 1e-9
agreement plus a battery of physical invariants.  This harness replaces
hand-enumerated grids as the primary engine-equivalence oracle: every new
simulation feature multiplies the surface, and uniform random sampling
covers the product where curated grids cannot.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

import numpy as np
import pytest

from repro.control.policies import dpm_policy_names
from repro.disk.dpm import DpmLadder, LadderRung, dpm_ladder_names
from repro.disk.fleet import Fleet, FleetDisk
from repro.disk.specs import ST3500630AS, WD10EADS
from repro.system import StorageConfig, StorageSystem
from repro.system.placement import placement_policy_names
from repro.system.scheduling import request_scheduler_names
from repro.units import GiB, MB
from repro.workload.catalog import FileCatalog
from repro.workload.arrivals import RequestStream
from repro.workload.mixed import MixedRequestStream

#: Event-vs-fast agreement tolerance (matches the curated control grids).
TOL = 1e-9


@dataclass
class DifferentialCase:
    """One fully materialized random scenario."""

    seed: int
    catalog: FileCatalog
    stream: object
    mapping: np.ndarray
    config: StorageConfig
    num_disks: int
    arrival_shape: str = "uniform"

    def describe(self) -> str:
        """Paste-able summary for bug reports and shrink-by-hand."""
        cfg = self.config
        stream = self.stream
        kinds = getattr(stream, "kinds", None)
        writes = int((np.asarray(kinds) == "write").sum()) if kinds is not None else 0
        ladder = cfg.dpm_ladder
        if isinstance(ladder, DpmLadder):
            ladder = "DpmLadder(" + ", ".join(
                f"({r.name!r}, p={r.power:.3f}, e={r.entry:.3f}, "
                f"dn={r.down_time:.3f}, wk={r.wake_time:.3f})"
                for r in ladder.rungs
            ) + ")"
        fleet = cfg.fleet
        if isinstance(fleet, Fleet):
            fleet = "Fleet(" + ", ".join(
                f"{s.spec.model}"
                + (
                    f"/{s.ladder if isinstance(s.ladder, str) else s.ladder.name}"
                    if s.ladder is not None
                    else ""
                )
                + (f"/th={s.threshold:g}" if s.threshold is not None else "")
                for s in fleet.profile
            ) + ")"
        return (
            f"DifferentialCase(seed={self.seed}): "
            f"{self.num_disks} disks, {len(stream.times)} requests "
            f"({writes} writes, {self.arrival_shape} arrivals) "
            f"over {stream.duration:.0f}s, "
            f"files={self.catalog.n}, "
            f"threshold={cfg.idleness_threshold!r}, "
            f"cache={cfg.cache_policy!r}, write_policy={cfg.write_policy!r}, "
            f"dpm_policy={cfg.dpm_policy!r} "
            f"(interval={cfg.control_interval:g}, "
            f"slo={cfg.slo_target!r}@{cfg.slo_percentile:g}), "
            f"ladder={ladder!r}, fleet={fleet!r}\n"
            f"Reproduce: PYTHONPATH=src REPRO_DIFF_CASES=1 "
            f"REPRO_DIFF_BASE_SEED={self.seed} "
            f"python -m pytest 'tests/differential/test_differential.py::"
            f"test_random_config_agrees' -q\n"
            f"Or rebuild in a REPL: "
            f"from diffgen import build_case; case = build_case({self.seed})"
        )


def _random_ladder(rng: np.random.Generator) -> DpmLadder:
    """A random *valid* user ladder (entries built feasibly by construction)."""
    depth = int(rng.integers(2, 5))
    powers = np.sort(rng.uniform(0.5, 9.0, size=depth - 1))[::-1]
    rungs = [LadderRung("idle", 9.3)]
    entry = 0.0
    down = 0.0
    names = ["r1", "r2", "r3"]
    for i in range(depth - 1):
        entry = entry + down + float(rng.uniform(4.0, 90.0))
        down = float(rng.uniform(0.0, 8.0))
        rungs.append(
            LadderRung(
                names[i],
                float(powers[i]),
                entry=entry,
                down_time=down,
                down_power=float(rng.uniform(2.0, 12.0)),
                wake_time=float(rng.uniform(0.0, 12.0)),
                wake_power=float(rng.uniform(10.0, 30.0)),
            )
        )
    return DpmLadder("random", tuple(rungs))


def _random_fleet(rng: np.random.Generator) -> Fleet:
    """A random heterogeneous profile: 2-3 slots over both registered
    drive models, each slot optionally carrying its own ladder preset
    and/or threshold (exercising mixed specs, mixed ladder depths, and
    the ladderless-slot -> two_state backfill in one scenario)."""
    n_slots = int(rng.integers(2, 4))
    slots = []
    for _ in range(n_slots):
        spec = ST3500630AS if rng.random() < 0.5 else WD10EADS
        ladder = (
            str(rng.choice(dpm_ladder_names()))
            if rng.random() < 0.3
            else None
        )
        threshold = (
            float(rng.uniform(3.0, 150.0)) if rng.random() < 0.3 else None
        )
        slots.append(FleetDisk(spec, ladder=ladder, threshold=threshold))
    return Fleet("random_mix", tuple(slots))


def _arrival_times(
    rng: np.random.Generator, rate: float, duration: float, shape: str
) -> np.ndarray:
    """Arrival epochs under one of three intensity shapes.

    ``uniform`` is the historical homogeneous-Poisson draw; ``diurnal``
    thins proposals against a sinusoidal day-cycle intensity; ``bursty``
    scatters NERSC-style request clusters (normal spread around a few
    burst centers) over a thin uniform background.
    """
    count = int(rng.poisson(rate * duration))
    if shape == "diurnal":
        raw = np.sort(rng.uniform(0.0, duration, size=2 * count))
        period = duration / float(rng.uniform(1.0, 3.0))
        keep = rng.random(raw.size) < 0.5 * (
            1.0 + np.sin(2.0 * np.pi * raw / period)
        )
        return raw[keep]
    if shape == "bursty":
        n_bursts = int(rng.integers(2, 8))
        centers = rng.uniform(0.0, duration, size=n_bursts)
        n_background = count // 5
        n_clustered = count - n_background
        clustered = (
            centers[rng.integers(0, n_bursts, size=n_clustered)]
            + rng.normal(0.0, duration / 40.0, size=n_clustered)
        )
        background = rng.uniform(0.0, duration, size=n_background)
        # Clip strays to a *strictly positive* floor: an arrival at
        # exactly t=0 coincides with the idle timer arming — a
        # measure-zero tie the engine contract explicitly leaves
        # unspecified (the event drive logs a zero-length idle gap, the
        # fast kernel does not, and predictive DPM policies then see
        # different telemetry).
        return np.sort(
            np.clip(
                np.concatenate([clustered, background]),
                duration * 1e-6,
                duration,
            )
        )
    return np.sort(rng.uniform(0.0, duration, size=count))


def build_case(seed: int) -> DifferentialCase:
    """Expand one seed into a valid random scenario (deterministically)."""
    rng = np.random.default_rng(seed)
    num_disks = int(rng.integers(2, 13))
    duration = float(rng.uniform(200.0, 650.0))
    rate = float(rng.uniform(0.1, 0.5)) * num_disks
    n_files = int(rng.integers(30, 250))

    sizes = rng.uniform(5 * MB, 400 * MB, size=n_files)
    weights = rng.zipf(1.8, size=n_files).astype(float)
    catalog = FileCatalog(sizes=sizes, popularities=weights / weights.sum())

    shape = str(rng.choice(["uniform", "uniform", "diurnal", "bursty"]))
    times = _arrival_times(rng, rate, duration, shape)
    count = int(times.size)
    file_ids = rng.choice(n_files, size=count, p=catalog.popularities)

    # A fraction of runs mix in writes, some of which create new files
    # (mapped -1 so the placement policy decides).
    write_fraction = float(rng.choice([0.0, 0.0, 0.25, 0.5]))
    mapping = rng.integers(0, num_disks, size=n_files).astype(np.int64)
    if write_fraction > 0 and count:
        n_new = int(rng.integers(0, max(1, n_files // 4) + 1))
        if n_new:
            new_sizes = rng.uniform(5 * MB, 400 * MB, size=n_new)
            catalog = FileCatalog(
                sizes=np.concatenate([catalog.sizes, new_sizes]),
                popularities=np.concatenate(
                    [catalog.popularities, np.zeros(n_new)]
                ),
            )
            mapping = np.concatenate(
                [mapping, np.full(n_new, -1, dtype=np.int64)]
            )
        kinds = np.where(
            rng.random(count) < write_fraction, "write", "read"
        ).astype(object)
        if n_new:
            # New files are written (first touch allocates), then may be
            # re-read later in the stream.
            new_ids = np.arange(n_files, n_files + n_new)
            first_writes = rng.choice(
                count, size=min(n_new, count), replace=False
            )
            for slot, fid in zip(np.sort(first_writes), new_ids):
                file_ids[slot] = fid
                kinds[slot] = "write"
                later = (times > times[slot]) & (rng.random(count) < 0.05)
                file_ids[later] = fid
        stream = MixedRequestStream(
            times=times, file_ids=file_ids, kinds=np.asarray(kinds, dtype=object),
            duration=duration,
        )
    else:
        stream = RequestStream(
            times=times, file_ids=file_ids, duration=duration
        )

    cache_policy = rng.choice(
        [None, None, None, "lru", "fifo", "clock", "lfu"]
    )
    threshold_kind = rng.choice(["default", "finite", "zero", "inf"])
    idleness_threshold = {
        "default": None,
        "finite": float(rng.uniform(3.0, 150.0)),
        "zero": 0.0,
        "inf": math.inf,
    }[threshold_kind]
    dpm_policy = str(rng.choice(dpm_policy_names()))
    ladder_choice = rng.choice(
        [None, None, *dpm_ladder_names(), "random"]
    )
    if ladder_choice == "random":
        dpm_ladder = _random_ladder(rng)
    else:
        dpm_ladder = ladder_choice

    # ~1/3 of runs put a heterogeneous fleet under the same config: the
    # mixed_generation preset or a random profile (per-slot ladders and
    # thresholds override the config-wide choices above on their disks).
    fleet_choice = rng.choice([None, None, "mixed_generation", "random"])
    if fleet_choice == "random":
        fleet = _random_fleet(rng)
    else:
        fleet = None if fleet_choice is None else str(fleet_choice)

    config = StorageConfig(
        num_disks=num_disks,
        idleness_threshold=idleness_threshold,
        load_constraint=float(rng.uniform(0.4, 0.9)),
        cache_policy=None if cache_policy is None else str(cache_policy),
        cache_capacity=float(rng.uniform(0.25, 4.0)) * GiB,
        cache_hit_latency=float(rng.choice([0.0, 0.0, 0.05])),
        write_policy=str(rng.choice(placement_policy_names())),
        dpm_policy=dpm_policy,
        control_interval=float(rng.uniform(40.0, 160.0)),
        slo_target=(
            float(rng.uniform(5.0, 40.0))
            if dpm_policy == "slo_feedback"
            else None
        ),
        slo_percentile=float(rng.choice([95.0, 99.0])),
        dpm_ladder=dpm_ladder,
        fleet=fleet,
    )
    return DifferentialCase(
        seed=seed,
        catalog=catalog,
        stream=stream,
        mapping=mapping,
        config=config,
        num_disks=num_disks,
        arrival_shape=shape,
    )


#: XOR salt for the scheduler axis' private RNG stream.  The scheduler
#: draw must NOT come from the ``build_case`` generator: inserting a draw
#: there would shift every downstream sample and silently re-roll the
#: entire historical seed corpus (pinned repro recipes included).
_SCHED_SALT = 0x5CED

def sample_scheduler(seed: int):
    """Deterministically draw ``(scheduler, scheduler_params)`` for a seed.

    Uses a salted, independent RNG stream so the base scenario for the
    same seed is unchanged.  ``slack_defer`` always receives an explicit
    ``target``: the random config space leaves ``slo_target`` unset for
    every policy but ``slo_feedback``, and the scheduler must be
    exercised against *all* DPM policies.
    """
    rng = np.random.default_rng(seed ^ _SCHED_SALT)
    name = str(
        rng.choice(
            ["slack_defer", "slack_defer", "batch_release",
             "spinup_coalesce", "fifo"]
        )
    )
    params = []
    if name == "slack_defer":
        params.append(("target", float(rng.uniform(5.0, 40.0))))
        if rng.random() < 0.5:
            params.append(("margin", float(rng.uniform(0.3, 1.0))))
        if rng.random() < 0.5:
            params.append(("max_hold", float(rng.uniform(0.0, 60.0))))
        if rng.random() < 0.3:
            params.append(("window", float(rng.uniform(2.0, 20.0))))
    elif name == "batch_release":
        if rng.random() < 0.7:
            params.append(("window", float(rng.uniform(2.0, 30.0))))
        if rng.random() < 0.5:
            params.append(("max_hold", float(rng.uniform(5.0, 60.0))))
    elif name == "spinup_coalesce":
        if rng.random() < 0.7:
            params.append(("max_hold", float(rng.uniform(5.0, 90.0))))
    return name, tuple(params)


def build_scheduled_case(seed: int) -> DifferentialCase:
    """The random scenario for ``seed`` with a random request scheduler
    layered on top (independent draw — see :func:`sample_scheduler`)."""
    case = build_case(seed)
    name, params = sample_scheduler(seed)
    return replace(
        case,
        config=case.config.with_overrides(
            scheduler=name, scheduler_params=params
        ),
    )


def run_engines(case: DifferentialCase):
    """Run the scenario on both kernels; returns ``(event, fast)``."""
    event = StorageSystem(
        case.catalog,
        case.mapping,
        case.config.with_overrides(engine="event"),
        num_disks=case.num_disks,
    ).run(case.stream)
    fast = StorageSystem(
        case.catalog,
        case.mapping,
        case.config.with_overrides(engine="fast"),
        num_disks=case.num_disks,
    ).run(case.stream)
    return event, fast


def assert_invariants(result, case: DifferentialCase) -> None:
    """Physical sanity independent of the other engine."""
    note = case.describe()
    T = result.duration
    n = result.num_disks
    assert result.completions <= result.arrivals, note
    assert result.spinups <= result.spindowns + n, note
    assert np.all(np.asarray(result.response_times) >= 0), note
    # Per-state residencies tile the run exactly.
    total = sum(result.state_durations.values())
    assert abs(total - T * n) < 1e-6 * max(1.0, T * n), note
    # Energy bounded by the extreme constant draws — over every spec and
    # every ladder actually present in the pool (a heterogeneous fleet
    # widens the envelope to the union of its drives').
    if case.config.fleet is not None:
        resolved = case.config.resolved_fleet(case.num_disks)
        specs = set(resolved.specs)
        ladders = {lad for lad in resolved.ladders if lad is not None}
    else:
        specs = {case.config.spec}
        ladder = case.config.ladder()
        ladders = set() if ladder is None else {ladder}
    powers = []
    for spec in specs:
        powers.extend(
            [
                spec.idle_power, spec.standby_power, spec.active_power,
                spec.seek_power, spec.spinup_power, spec.spindown_power,
            ]
        )
    for ladder in ladders:
        powers.extend(
            [r.power for r in ladder.rungs]
            + [r.down_power for r in ladder.rungs]
            + [r.wake_power for r in ladder.rungs]
        )
    assert result.energy <= max(powers) * T * n + 1e-6, note
    assert result.energy >= min(powers) * T * n - 1e-6, note
    assert np.all(result.energy_per_disk >= -1e-9), note


def run_observed(case: DifferentialCase, engine: str, observer=None):
    """Run the scenario on one kernel, optionally under an observer."""
    return StorageSystem(
        case.catalog,
        case.mapping,
        case.config.with_overrides(engine=engine),
        num_disks=case.num_disks,
    ).run(case.stream, observer=observer)


def assert_observer_invisible(off, on, case: DifferentialCase, engine: str) -> None:
    """Observation is purely passive: an observed run must be *bit*
    identical to an unobserved one — not 1e-9, bit — in every simulated
    quantity.  Any drift means an observer hook leaked arithmetic into
    the kernel.  (``extra["obs"]`` is the one sanctioned difference.)
    """
    note = f"{case.describe()}\n(engine={engine!r}, observer on vs off)"
    assert np.array_equal(off.response_times, on.response_times), note
    assert np.array_equal(off.energy_per_disk, on.energy_per_disk), note
    assert off.energy == on.energy, note
    assert np.array_equal(off.final_mapping, on.final_mapping), note
    assert np.array_equal(off.requests_per_disk, on.requests_per_disk), note
    assert np.array_equal(off.spinups_per_disk, on.spinups_per_disk), note
    assert off.state_durations == on.state_durations, note
    assert off.arrivals == on.arrivals, note
    assert off.completions == on.completions, note
    assert off.spinups == on.spinups, note
    assert off.spindowns == on.spindowns, note
    if off.cache_stats is not None:
        assert off.cache_stats == on.cache_stats, note
    if "dpm" in off.extra:
        assert off.extra["dpm"]["thresholds"] == on.extra["dpm"]["thresholds"], note
        assert off.extra["dpm"]["t_end"] == on.extra["dpm"]["t_end"], note
    assert "obs" not in off.extra, note
    assert "obs" in on.extra, note


def run_chunked(case: DifferentialCase, chunk_size: int, metrics_mode="full"):
    """Run the fast kernel out-of-core (``chunk_size`` requests at a time)."""
    return StorageSystem(
        case.catalog,
        case.mapping,
        case.config.with_overrides(
            engine="fast", chunk_size=chunk_size, metrics_mode=metrics_mode
        ),
        num_disks=case.num_disks,
    ).run(case.stream)


def assert_chunked_identical(mono, chunk, case: DifferentialCase, k: int) -> None:
    """The chunked axis is held to *bit* identity, not 1e-9: the chunked
    core's accumulators are chosen for partition invariance (serial
    scatter-adds continuing the monolithic reductions), so any drift is a
    carry-state bug, not float noise.  The one exception is the controlled
    per-interval power trace, whose incremental span binning regroups
    float sums — held to 1e-9 relative instead.
    """
    note = f"{case.describe()}\n(chunk_size={k})"
    assert np.array_equal(mono.response_times, chunk.response_times), note
    assert np.array_equal(mono.energy_per_disk, chunk.energy_per_disk), note
    assert np.array_equal(mono.final_mapping, chunk.final_mapping), note
    assert np.array_equal(mono.requests_per_disk, chunk.requests_per_disk), note
    assert np.array_equal(mono.spinups_per_disk, chunk.spinups_per_disk), note
    assert mono.state_durations == chunk.state_durations, note
    assert mono.arrivals == chunk.arrivals, note
    assert mono.completions == chunk.completions, note
    assert mono.spinups == chunk.spinups, note
    assert mono.spindowns == chunk.spindowns, note
    if mono.cache_stats is not None:
        assert mono.cache_stats.hits == chunk.cache_stats.hits, note
        assert mono.cache_stats.misses == chunk.cache_stats.misses, note
    if "dpm" in mono.extra:
        dpm_m, dpm_c = mono.extra["dpm"], chunk.extra["dpm"]
        assert dpm_c["thresholds"] == dpm_m["thresholds"], note
        assert dpm_c["t_end"] == dpm_m["t_end"], note
        assert dpm_c["completions"] == dpm_m["completions"], note
        np.testing.assert_allclose(
            np.asarray(dpm_c["power"]),
            np.asarray(dpm_m["power"]),
            rtol=1e-9,
            atol=1e-12,
            err_msg=note,
        )


def assert_streaming_consistent(mono, streamed, case: DifferentialCase) -> None:
    """Streaming metrics vs the full response array of the same run:
    count/min/max exact, mean to serial-sum-regrouping noise (the
    accumulator continues the same left-to-right reduction, so in practice
    this is bit-exact too — asserted at 1e-12 to stay honest about the
    contract rather than the implementation)."""
    note = case.describe()
    assert streamed.response_times is None, note
    stats = streamed.response_stats
    assert stats is not None, note
    assert stats.count == mono.completions, note
    if mono.completions:
        resp = mono.response_times
        assert stats.min == float(resp.min()), note
        assert stats.max == float(resp.max()), note
        assert abs(stats.mean - float(resp.mean())) <= 1e-12 * max(
            1.0, abs(float(resp.mean()))
        ), note
    # Everything that never depended on the response array stays bit-equal.
    assert np.array_equal(mono.energy_per_disk, streamed.energy_per_disk), note
    assert mono.state_durations == streamed.state_durations, note
    assert np.array_equal(mono.final_mapping, streamed.final_mapping), note


def assert_engines_agree(event, fast, case: DifferentialCase) -> None:
    """The 1e-9 cross-engine contract, annotated with the repro recipe."""
    note = case.describe()
    assert fast.arrivals == event.arrivals, note
    assert fast.completions == event.completions, note
    assert fast.spinups == event.spinups, note
    assert fast.spindowns == event.spindowns, note
    assert abs(fast.energy - event.energy) <= TOL * max(1.0, event.energy), note
    np.testing.assert_allclose(
        fast.energy_per_disk, event.energy_per_disk, rtol=TOL, atol=1e-6,
        err_msg=note,
    )
    np.testing.assert_allclose(
        np.sort(fast.response_times),
        np.sort(event.response_times),
        rtol=TOL,
        atol=TOL,
        err_msg=note,
    )
    for state, t in event.state_durations.items():
        assert fast.state_durations.get(state, 0.0) == pytest.approx(
            t, rel=TOL, abs=1e-6
        ), (state, note)
    if event.final_mapping is not None:
        assert np.array_equal(fast.final_mapping, event.final_mapping), note
    if event.cache_stats is not None:
        assert fast.cache_stats.hits == event.cache_stats.hits, note
        assert fast.cache_stats.misses == event.cache_stats.misses, note
    if "dpm" in event.extra:
        dpm_e, dpm_f = event.extra["dpm"], fast.extra["dpm"]
        assert dpm_f["thresholds"] == dpm_e["thresholds"], note
        assert dpm_f["t_end"] == dpm_e["t_end"], note
        assert dpm_f["completions"] == dpm_e["completions"], note
        np.testing.assert_allclose(
            np.asarray(dpm_f["power"]),
            np.asarray(dpm_e["power"]),
            rtol=1e-6,
            atol=1e-9,
            err_msg=note,
        )
