"""Tests for unit constants and formatting."""

import pytest

from repro import units


class TestConstants:
    def test_decimal_multiples(self):
        assert units.GB == 1e9
        assert units.TB == 1e12

    def test_binary_multiples(self):
        assert units.GiB == 2**30

    def test_time(self):
        assert units.HOUR == 3600
        assert units.DAY == 86400


class TestFormatting:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (544e6, "544.0 MB"),
            (20e9, "20.0 GB"),
            (12.86e12, "12.9 TB"),
            (500.0, "500 B"),
            (2048.0, "2.0 KB"),
        ],
    )
    def test_format_bytes(self, value, expected):
        assert units.format_bytes(value) == expected

    @pytest.mark.parametrize(
        "value,expected",
        [
            (7200, "2.00 h"),
            (90, "1.50 min"),
            (53.3, "53.30 s"),
            (0.0085, "8.50 ms"),
        ],
    )
    def test_format_time(self, value, expected):
        assert units.format_time(value) == expected

    def test_format_power(self):
        assert units.format_power(9.3) == "9.3 W"
        assert units.format_power(1500) == "1.50 kW"

    def test_format_energy(self):
        assert units.format_energy(453) == "453.0 J"
        assert units.format_energy(7.2e6) == "2.000 kWh"
        assert units.format_energy(4e3) == "4.0 kJ"


class TestErrors:
    def test_hierarchy(self):
        from repro import errors

        assert issubclass(errors.PackingError, errors.ReproError)
        assert issubclass(errors.ConfigError, ValueError)
        assert issubclass(errors.TraceFormatError, errors.ReproError)
        assert issubclass(errors.CapacityError, errors.ReproError)
        assert issubclass(errors.SimulationError, errors.ReproError)

    def test_catch_all(self):
        from repro.errors import ConfigError, ReproError

        with pytest.raises(ReproError):
            raise ConfigError("x")
