"""Smoke tests running every shipped example as a subprocess.

These guarantee the documented entry points actually run on a fresh
install (tiny parameters keep them fast).
"""

import subprocess
import sys
from pathlib import Path


EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name, *args, timeout=240):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, f"{name} failed:\n{proc.stderr}"
    return proc.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example(
            "quickstart.py", "--files", "2000", "--duration", "400",
            "--rate", "1", "--disks", "20",
        )
        assert "Power saving of Pack_Disks vs random" in out

    def test_capacity_planning(self):
        out = run_example(
            "capacity_planning.py", "--files", "3000", "--target", "40",
        )
        assert "Recommended:" in out
        assert "Validating" in out

    def test_nersc_trace_replay(self):
        out = run_example("nersc_trace_replay.py", "--scale", "0.02")
        assert "Pack_Disk4" in out
        assert "RND+LRU" in out

    def test_tradeoff_explorer(self):
        out = run_example(
            "tradeoff_explorer.py", "--scale", "0.05", "--files", "6000",
        )
        assert "Array power vs load constraint" in out
        assert "simulated" in out and "analytic" in out

    def test_extensions_tour(self):
        out = run_example("extensions_tour.py")
        assert "Diurnal load cycle" in out
        assert "Multi-state DPM" in out

    def test_quickstart_shows_positive_saving(self):
        out = run_example(
            "quickstart.py", "--files", "8000", "--duration", "600",
            "--rate", "1", "--disks", "40",
        )
        line = next(
            l for l in out.splitlines() if "Power saving" in l
        )
        saving = float(line.split(":")[1].strip().rstrip("%"))
        assert saving > 0
